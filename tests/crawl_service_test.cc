#include "src/service/crawl_service.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace mto {
namespace {

/// Small but non-trivial scenario: faults on, multiple backends, sharded
/// selection (the interleaving-independent ledger assignment).
ScenarioConfig FaultyScenario() {
  ScenarioConfig config;
  config.dataset = "epinions_small";
  config.seed = 0xABCD;
  config.sampler = SamplerKind::kSrw;
  config.num_walkers = 8;
  config.num_threads = 1;
  config.geweke_check_every = 20;
  config.geweke_min_length = 40;
  config.max_burn_in_rounds = 200;
  config.num_samples = 32;
  config.thinning = 5;
  config.fault_seed = 0xFA17;
  config.retry.max_attempts_per_backend = 12;
  config.backends.resize(3);
  config.backends[0].error_rate = 0.2;
  config.backends[0].latency_mean_us = 150;
  config.backends[0].latency_sigma = 0.4;
  config.backends[1].timeout_rate = 0.1;
  config.backends[1].rate_per_sec = 5000.0;
  config.backends[1].burst = 16.0;
  config.backends[2].quota_rate = 0.15;
  return config;
}

std::string TempCheckpointPath(const char* tag) {
  return testing::TempDir() + "/crawl_service_test_" + tag + ".ckpt";
}

void ExpectBitIdentical(const ServiceResult& a, const ServiceResult& b) {
  EXPECT_EQ(a.samples, b.samples);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].query_cost, b.trace[i].query_cost) << "trace " << i;
    EXPECT_EQ(a.trace[i].estimate, b.trace[i].estimate) << "trace " << i;
  }
  EXPECT_EQ(a.final_estimate, b.final_estimate);  // bitwise, not NEAR
  EXPECT_EQ(a.burn_in_converged, b.burn_in_converged);
  EXPECT_EQ(a.burn_in_rounds, b.burn_in_rounds);
  EXPECT_EQ(a.burn_in_query_cost, b.burn_in_query_cost);
  EXPECT_EQ(a.total_rounds, b.total_rounds);
  EXPECT_EQ(a.total_steps, b.total_steps);
  EXPECT_EQ(a.total_query_cost, b.total_query_cost);
  EXPECT_EQ(a.failed_fetches, b.failed_fetches);
  ASSERT_EQ(a.backend_stats.size(), b.backend_stats.size());
  for (size_t i = 0; i < a.backend_stats.size(); ++i) {
    EXPECT_EQ(a.backend_stats[i].unique_queries,
              b.backend_stats[i].unique_queries)
        << "backend " << i;
  }
}

/// Runs to completion, interrupting after `kill_after_units` units: saves a
/// checkpoint there, destroys the service ("crash"), and resumes in a fresh
/// one built from the same config.
ServiceResult RunWithKillAndResume(const ScenarioConfig& config,
                                   size_t kill_after_units,
                                   const std::string& path) {
  {
    CrawlService victim(config);
    for (size_t i = 0; i < kill_after_units && victim.Advance(); ++i) {
    }
    victim.SaveCheckpoint(path);
    // Destructor = crash: everything in memory is lost.
  }
  CrawlService resumed(config);
  resumed.LoadCheckpoint(path);
  while (resumed.Advance()) {
  }
  return resumed.Finish();
}

TEST(CrawlServiceTest, RunsFaultyScenarioToCompletion) {
  ScenarioConfig config = FaultyScenario();
  CrawlService service(config);
  ServiceResult result = service.Run();
  EXPECT_EQ(result.samples.size(), 32u);
  EXPECT_TRUE(result.burn_in_converged);
  EXPECT_GT(result.total_query_cost, 0u);
  EXPECT_GT(result.backend_requests, result.total_query_cost);  // retries
  ASSERT_EQ(result.backend_stats.size(), 3u);
  uint64_t unique_sum = 0, faults = 0;
  for (const BackendStats& stats : result.backend_stats) {
    unique_sum += stats.unique_queries;
    faults += stats.failed_requests;
  }
  EXPECT_EQ(unique_sum, result.total_query_cost);
  EXPECT_GT(faults, 0u);  // the fault injector actually fired
  EXPECT_GT(result.simulated_time_us, 0u);
}

TEST(CrawlServiceTest, ResumeIsBitIdenticalAtEveryKillPoint) {
  ScenarioConfig config = FaultyScenario();
  const ServiceResult uninterrupted = CrawlService(config).Run();
  const std::string path = TempCheckpointPath("kill_points");
  // Kill points spanning burn-in (epochs) and sampling (collection rounds).
  for (size_t kill_after : {0u, 1u, 2u, 5u, 9u, 20u}) {
    SCOPED_TRACE("kill_after=" + std::to_string(kill_after));
    ExpectBitIdentical(uninterrupted,
                       RunWithKillAndResume(config, kill_after, path));
  }
  std::remove(path.c_str());
}

TEST(CrawlServiceTest, ResumeIsBitIdenticalUnderMultiThreadScheduling) {
  ScenarioConfig config = FaultyScenario();
  const ServiceResult uninterrupted = CrawlService(config).Run();
  const std::string path = TempCheckpointPath("threads");
  // Interrupt a 4-thread crawl, resume on 4 threads.
  config.num_threads = 4;
  ExpectBitIdentical(uninterrupted, RunWithKillAndResume(config, 3, path));
  // A 1-thread checkpoint resumes on 4 threads (and vice versa): the
  // fingerprint deliberately ignores execution shape.
  {
    ScenarioConfig one_thread = config;
    one_thread.num_threads = 1;
    CrawlService victim(one_thread);
    victim.Advance();
    victim.Advance();
    victim.SaveCheckpoint(path);
  }
  CrawlService resumed(config);  // 4 threads
  resumed.LoadCheckpoint(path);
  while (resumed.Advance()) {
  }
  ExpectBitIdentical(uninterrupted, resumed.Finish());
  std::remove(path.c_str());
}

TEST(CrawlServiceTest, ResumeIsBitIdenticalInCoalescedMode) {
  ScenarioConfig config = FaultyScenario();
  config.coalesce_frontier = true;
  config.num_threads = 2;
  const ServiceResult uninterrupted = CrawlService(config).Run();
  const std::string path = TempCheckpointPath("coalesced");
  ExpectBitIdentical(uninterrupted, RunWithKillAndResume(config, 4, path));
  std::remove(path.c_str());

  // Stepping mode does not change results either (runtime contract carries
  // through the service layer, faults included).
  ScenarioConfig free_run = config;
  free_run.coalesce_frontier = false;
  ExpectBitIdentical(uninterrupted, CrawlService(free_run).Run());
}

TEST(CrawlServiceTest, PeriodicCheckpointsDuringRunAreResumable) {
  ScenarioConfig config = FaultyScenario();
  config.checkpoint.path = TempCheckpointPath("periodic");
  config.checkpoint.every_units = 3;
  const ServiceResult full = CrawlService(config).Run();
  // The last periodic checkpoint is some mid-run state; resuming it must
  // converge to the same result.
  CrawlService resumed(config);
  resumed.LoadCheckpoint(config.checkpoint.path);
  while (resumed.Advance()) {
  }
  ExpectBitIdentical(full, resumed.Finish());
  std::remove(config.checkpoint.path.c_str());
}

TEST(CrawlServiceTest, MhrwScenarioAlsoResumesBitIdentically) {
  ScenarioConfig config = FaultyScenario();
  config.sampler = SamplerKind::kMhrw;
  config.num_threads = 2;
  const ServiceResult uninterrupted = CrawlService(config).Run();
  const std::string path = TempCheckpointPath("mhrw");
  ExpectBitIdentical(uninterrupted, RunWithKillAndResume(config, 6, path));
  std::remove(path.c_str());
}

TEST(CrawlServiceTest, MtoScenarioResumesBitIdenticallyAtEveryKillPoint) {
  // The paper's own sampler, with its mutable overlay in the checkpoint
  // image: kill points span mid-burn-in (mid-rewire — the overlay is a
  // half-classified work in progress) and the sampling phase (frozen
  // overlay), under injected faults.
  ScenarioConfig config = FaultyScenario();
  config.sampler = SamplerKind::kMto;
  const ServiceResult uninterrupted = CrawlService(config).Run();
  const std::string path = TempCheckpointPath("mto_kill_points");
  for (size_t kill_after : {0u, 1u, 2u, 5u, 9u, 20u}) {
    SCOPED_TRACE("kill_after=" + std::to_string(kill_after));
    ExpectBitIdentical(uninterrupted,
                       RunWithKillAndResume(config, kill_after, path));
  }
  std::remove(path.c_str());
}

TEST(CrawlServiceTest, MtoScenarioIsBitIdenticalAcrossThreadsAndModes) {
  // The acceptance invariant for speculative stepping carried through the
  // whole stack: an MTO crawl under CrawlScheduler with frontier
  // coalescing produces bit-identical samples/trace/cost across 1/2/8
  // threads and both stepping modes — and a coalesced multi-thread victim
  // resumes bit-identically.
  ScenarioConfig config = FaultyScenario();
  config.sampler = SamplerKind::kMto;
  const ServiceResult reference = CrawlService(config).Run();
  for (size_t threads : {2u, 8u}) {
    for (bool coalesce : {false, true}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) + " coalesce=" +
                   std::to_string(coalesce));
      ScenarioConfig variant = config;
      variant.num_threads = threads;
      variant.coalesce_frontier = coalesce;
      ExpectBitIdentical(reference, CrawlService(variant).Run());
    }
  }
  ScenarioConfig coalesced = config;
  coalesced.num_threads = 2;
  coalesced.coalesce_frontier = true;
  const std::string path = TempCheckpointPath("mto_coalesced");
  ExpectBitIdentical(reference, RunWithKillAndResume(coalesced, 4, path));
  std::remove(path.c_str());
}

TEST(CrawlServiceTest, MtoPeriodicCheckpointsDuringRunAreResumable) {
  ScenarioConfig config = FaultyScenario();
  config.sampler = SamplerKind::kMto;
  config.checkpoint.path = TempCheckpointPath("mto_periodic");
  config.checkpoint.every_units = 3;
  const ServiceResult full = CrawlService(config).Run();
  CrawlService resumed(config);
  resumed.LoadCheckpoint(config.checkpoint.path);
  while (resumed.Advance()) {
  }
  ExpectBitIdentical(full, resumed.Finish());
  std::remove(config.checkpoint.path.c_str());
}

TEST(CrawlServiceTest, LoadCheckpointGuards) {
  ScenarioConfig config = FaultyScenario();
  const std::string path = TempCheckpointPath("guards");
  {
    CrawlService service(config);
    service.Advance();
    service.SaveCheckpoint(path);
    // A service that already ran refuses to load.
    EXPECT_THROW(service.LoadCheckpoint(path), std::logic_error);
  }
  // A different scenario refuses the checkpoint (fingerprint mismatch).
  ScenarioConfig other = config;
  other.seed = 999;
  CrawlService mismatched(other);
  EXPECT_THROW(mismatched.LoadCheckpoint(path), std::runtime_error);
  // Corrupt file refuses to parse.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "not a checkpoint";
  }
  CrawlService fresh(config);
  EXPECT_THROW(fresh.LoadCheckpoint(path), std::runtime_error);
  std::remove(path.c_str());
  EXPECT_THROW(fresh.LoadCheckpoint(path), std::runtime_error);
}

TEST(CrawlServiceTest, BudgetedScenarioStopsAtPoolCap) {
  ScenarioConfig config = FaultyScenario();
  config.total_budget = 500;
  CrawlService service(config);
  ServiceResult result = service.Run();
  EXPECT_LE(result.total_query_cost, 500u);
}

}  // namespace
}  // namespace mto
