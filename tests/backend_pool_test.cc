#include "src/service/backend_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "src/graph/generators.h"
#include "src/runtime/concurrent_interface_cache.h"
#include "src/util/thread_pool.h"

namespace mto {
namespace {

constexpr uint64_t kFaultSeed = 0xFA17;

SocialNetwork TestNet() { return SocialNetwork(Cycle(64)); }

std::vector<BackendConfig> PerfectBackends(size_t n) {
  return std::vector<BackendConfig>(n);
}

TEST(BackendPoolTest, PerfectBackendBehavesLikeBaseInterface) {
  SocialNetwork net = TestNet();
  BackendPool pool(net, PerfectBackends(1), RetryPolicy{},
                   BackendSelection::kSharded, kFaultSeed);
  auto r = pool.Query(5);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->user, 5u);
  pool.Query(5);
  EXPECT_EQ(pool.QueryCost(), 1u);
  EXPECT_EQ(pool.TotalRequests(), 2u);
  EXPECT_EQ(pool.BackendRequests(), 1u);
  EXPECT_EQ(pool.backend_stats(0).unique_queries, 1u);
  EXPECT_EQ(pool.FailedFetches(), 0u);
}

TEST(BackendPoolTest, ShardedSelectionAssignsByNodeId) {
  SocialNetwork net = TestNet();
  BackendPool pool(net, PerfectBackends(4), RetryPolicy{},
                   BackendSelection::kSharded, kFaultSeed);
  for (NodeId v = 0; v < 16; ++v) pool.Query(v);
  for (size_t b = 0; b < 4; ++b) {
    EXPECT_EQ(pool.backend_stats(b).unique_queries, 4u) << "backend " << b;
  }
}

TEST(BackendPoolTest, RoundRobinRotatesAcrossKeys) {
  SocialNetwork net = TestNet();
  BackendPool pool(net, PerfectBackends(3), RetryPolicy{},
                   BackendSelection::kRoundRobin, kFaultSeed);
  for (NodeId v = 0; v < 9; ++v) pool.Query(v);
  for (size_t b = 0; b < 3; ++b) {
    EXPECT_EQ(pool.backend_stats(b).unique_queries, 3u);
  }
}

TEST(BackendPoolTest, LeastLoadedBalancesRequests) {
  SocialNetwork net = TestNet();
  BackendPool pool(net, PerfectBackends(2), RetryPolicy{},
                   BackendSelection::kLeastLoaded, kFaultSeed);
  for (NodeId v = 0; v < 10; ++v) pool.Query(v);
  EXPECT_EQ(pool.backend_stats(0).requests, 5u);
  EXPECT_EQ(pool.backend_stats(1).requests, 5u);
}

TEST(BackendPoolTest, BudgetAwarePrefersDeepestRemainingBudget) {
  SocialNetwork net = TestNet();
  std::vector<BackendConfig> backends(2);
  backends[0].budget = 2;  // shallow key
  // backends[1] unlimited
  BackendPool pool(net, backends, RetryPolicy{},
                   BackendSelection::kBudgetAware, kFaultSeed);
  for (NodeId v = 0; v < 8; ++v) pool.Query(v);
  // The unlimited key should absorb everything.
  EXPECT_EQ(pool.backend_stats(1).unique_queries, 8u);
  EXPECT_EQ(pool.backend_stats(0).unique_queries, 0u);
}

TEST(BackendPoolTest, BudgetExhaustionFailsOverToNextBackend) {
  SocialNetwork net = TestNet();
  std::vector<BackendConfig> backends(2);
  backends[0].budget = 3;
  backends[1].budget = 3;
  BackendPool pool(net, backends, RetryPolicy{}, BackendSelection::kSharded,
                   kFaultSeed);
  // Nodes 0,2,4,... shard to backend 0; drain both budgets.
  for (NodeId v = 0; v < 6; ++v) EXPECT_TRUE(pool.Query(2 * v).has_value());
  EXPECT_EQ(pool.backend_stats(0).unique_queries, 3u);
  EXPECT_EQ(pool.backend_stats(1).unique_queries, 3u);
  // All keys spent: the fetch is permanently refused, node stays uncached.
  EXPECT_FALSE(pool.Query(13).has_value());
  EXPECT_FALSE(pool.IsCached(13));
  EXPECT_EQ(pool.FailedFetches(), 1u);
  EXPECT_GE(pool.backend_stats(0).budget_refusals, 1u);
}

TEST(BackendPoolTest, TransientFaultsAreRetriedAndMaskedFromCallers) {
  SocialNetwork net = TestNet();
  std::vector<BackendConfig> backends(1);
  backends[0].error_rate = 0.4;
  RetryPolicy retry;
  retry.max_attempts_per_backend = 20;  // enough to mask p=0.4 w.h.p.
  BackendPool pool(net, backends, retry, BackendSelection::kSharded,
                   kFaultSeed);
  for (NodeId v = 0; v < 64; ++v) {
    EXPECT_TRUE(pool.Query(v).has_value()) << "node " << v;
  }
  const BackendStats stats = pool.backend_stats(0);
  EXPECT_EQ(stats.unique_queries, 64u);
  EXPECT_GT(stats.transient_errors, 0u);
  EXPECT_EQ(stats.requests, 64u + stats.failed_requests);
  EXPECT_EQ(pool.FailedFetches(), 0u);
}

TEST(BackendPoolTest, FaultDrawsArePureFunctionsOfNodeAndAttempt) {
  SocialNetwork net = TestNet();
  std::vector<BackendConfig> backends(2);
  backends[0].error_rate = 0.3;
  backends[1].timeout_rate = 0.2;
  auto run = [&](std::vector<NodeId> order) {
    BackendPool pool(net, backends, RetryPolicy{}, BackendSelection::kSharded,
                     kFaultSeed);
    for (NodeId v : order) pool.Query(v);
    std::vector<uint64_t> uniques;
    for (size_t b = 0; b < 2; ++b) {
      uniques.push_back(pool.backend_stats(b).unique_queries);
    }
    return std::make_pair(uniques, pool.FailedFetches());
  };
  std::vector<NodeId> forward(32), reverse(32);
  std::iota(forward.begin(), forward.end(), 0);
  std::iota(reverse.begin(), reverse.end(), 0);
  std::reverse(reverse.begin(), reverse.end());
  // Arrival order must not change which backend pays for which node.
  EXPECT_EQ(run(forward), run(reverse));
}

TEST(BackendPoolTest, TimeoutsBurnSimulatedTime) {
  SocialNetwork net = TestNet();
  std::vector<BackendConfig> backends(1);
  backends[0].timeout_rate = 1.0;  // every attempt times out
  backends[0].timeout_us = 1000;
  RetryPolicy retry;
  retry.max_attempts_per_backend = 2;
  retry.jitter = 0.0;
  retry.base_backoff_us = 500;
  BackendPool pool(net, backends, retry, BackendSelection::kSharded,
                   kFaultSeed);
  EXPECT_FALSE(pool.Query(0).has_value());
  const BackendStats stats = pool.backend_stats(0);
  EXPECT_EQ(stats.timeouts, 2u);
  EXPECT_EQ(stats.failed_requests, 2u);
  // 2 timeouts (1000us each) + backoffs 500us and 1000us.
  EXPECT_EQ(stats.simulated_us, 2 * 1000u + 500u + 1000u);
  EXPECT_EQ(pool.SimulatedTimeUs(), stats.simulated_us);
}

TEST(BackendPoolTest, TokenBucketPacesOnSimulatedClock) {
  SocialNetwork net = TestNet();
  std::vector<BackendConfig> backends(1);
  backends[0].rate_per_sec = 1000.0;  // 1 request per 1000us
  backends[0].burst = 2.0;
  BackendPool pool(net, backends, RetryPolicy{}, BackendSelection::kSharded,
                   kFaultSeed);
  for (NodeId v = 0; v < 10; ++v) pool.Query(v);
  const BackendStats stats = pool.backend_stats(0);
  // First two ride the burst; the rest wait ~1000us each.
  EXPECT_EQ(stats.pacing_waits, 8u);
  EXPECT_GE(stats.simulated_us, 8 * 999u);
  EXPECT_EQ(stats.unique_queries, 10u);
}

TEST(BackendPoolTest, LatencyDistributionIsDeterministicAndCharged) {
  SocialNetwork net = TestNet();
  std::vector<BackendConfig> backends(1);
  backends[0].latency_mean_us = 200;
  backends[0].latency_sigma = 0.5;
  auto run = [&] {
    BackendPool pool(net, backends, RetryPolicy{}, BackendSelection::kSharded,
                     kFaultSeed);
    for (NodeId v = 0; v < 32; ++v) pool.Query(v);
    return pool.backend_stats(0).simulated_us;
  };
  const uint64_t a = run();
  EXPECT_EQ(a, run());  // bit-reproducible
  EXPECT_GT(a, 0u);
}

TEST(BackendPoolTest, SnapshotRestoreRoundTripsLedgers) {
  SocialNetwork net = TestNet();
  std::vector<BackendConfig> backends(2);
  backends[0].error_rate = 0.3;
  backends[0].rate_per_sec = 100.0;
  BackendPool pool(net, backends, RetryPolicy{},
                   BackendSelection::kRoundRobin, kFaultSeed);
  for (NodeId v = 0; v < 20; ++v) pool.Query(v);

  const SessionSnapshot session = pool.SnapshotSession();
  const BackendPool::PoolSnapshot snapshot = pool.SnapshotBackends();

  BackendPool restored(net, backends, RetryPolicy{},
                       BackendSelection::kRoundRobin, kFaultSeed);
  restored.RestoreSession(session);
  restored.RestoreBackends(snapshot);
  EXPECT_EQ(restored.QueryCost(), pool.QueryCost());
  EXPECT_EQ(restored.BackendRequests(), pool.BackendRequests());
  for (size_t b = 0; b < 2; ++b) {
    EXPECT_EQ(restored.backend_stats(b).requests,
              pool.backend_stats(b).requests);
    EXPECT_EQ(restored.backend_stats(b).simulated_us,
              pool.backend_stats(b).simulated_us);
  }
  // The restored pool continues exactly like the original.
  auto a = pool.Query(40);
  auto b = restored.Query(40);
  ASSERT_EQ(a.has_value(), b.has_value());
  EXPECT_EQ(pool.backend_stats(0).requests, restored.backend_stats(0).requests);
  EXPECT_EQ(pool.backend_stats(1).requests, restored.backend_stats(1).requests);

  BackendPool wrong(net, PerfectBackends(3), RetryPolicy{},
                    BackendSelection::kSharded, kFaultSeed);
  EXPECT_THROW(wrong.RestoreBackends(snapshot), std::invalid_argument);
}

TEST(BackendPoolTest, WorksUnderConcurrentInterfaceCache) {
  SocialNetwork net = TestNet();
  std::vector<BackendConfig> backends(2);
  backends[0].error_rate = 0.2;
  RetryPolicy retry;
  retry.max_attempts_per_backend = 16;
  BackendPool pool(net, backends, retry, BackendSelection::kSharded,
                   kFaultSeed);
  ConcurrentInterfaceCache cache(pool);
  ThreadPool threads(4);
  threads.Run([&](size_t t) {
    for (NodeId v = 0; v < 64; ++v) {
      auto r = cache.Query((v + 16 * t) % 64);
      EXPECT_TRUE(r.has_value());
    }
  });
  EXPECT_EQ(cache.QueryCost(), 64u);
  EXPECT_EQ(pool.backend_stats(0).unique_queries, 32u);
  EXPECT_EQ(pool.backend_stats(1).unique_queries, 32u);
}

TEST(BackendPoolTest, ValidatesConfigs) {
  SocialNetwork net = TestNet();
  EXPECT_THROW(BackendPool(net, {}, RetryPolicy{},
                           BackendSelection::kSharded, 1),
               std::invalid_argument);
  std::vector<BackendConfig> bad(1);
  bad[0].error_rate = 0.8;
  bad[0].timeout_rate = 0.5;  // rates sum > 1
  EXPECT_THROW(BackendPool(net, bad, RetryPolicy{},
                           BackendSelection::kSharded, 1),
               std::invalid_argument);
  std::vector<BackendConfig> named(1);
  BackendPool pool(net, named, RetryPolicy{}, BackendSelection::kSharded, 1);
  EXPECT_EQ(pool.backend_config(0).name, "key-0");
}

}  // namespace
}  // namespace mto
