#include "src/runtime/concurrent_interface_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "src/graph/generators.h"
#include "src/net/social_network.h"

namespace mto {
namespace {

TEST(ConcurrentInterfaceCacheTest, SingleThreadSemanticsMatchBase) {
  SocialNetwork net(Barbell(4));
  RestrictedInterface plain(net);
  RestrictedInterface base(net);
  ConcurrentInterfaceCache cache(base);

  for (NodeId v : {0u, 1u, 0u, 5u, 1u}) {
    auto expected = plain.Query(v);
    auto actual = cache.Query(v);
    ASSERT_TRUE(actual.has_value());
    EXPECT_EQ(actual->user, expected->user);
    EXPECT_EQ(actual->neighbors, expected->neighbors);
  }
  EXPECT_EQ(cache.QueryCost(), plain.QueryCost());
  EXPECT_EQ(cache.TotalRequests(), plain.TotalRequests());
  EXPECT_TRUE(cache.IsCached(0));
  EXPECT_FALSE(cache.IsCached(7));
  EXPECT_EQ(*cache.CachedDegree(5), net.graph().Degree(5));
  EXPECT_FALSE(cache.CachedDegree(7).has_value());
}

TEST(ConcurrentInterfaceCacheTest, OutOfRangeIdsAreNotCachedAndThrow) {
  SocialNetwork net(Cycle(6));
  RestrictedInterface base(net);
  ConcurrentInterfaceCache cache(base);
  EXPECT_FALSE(cache.IsCached(1000000));
  EXPECT_FALSE(cache.CachedDegree(1000000).has_value());
  EXPECT_THROW(cache.Query(6), std::invalid_argument);
}

TEST(ConcurrentInterfaceCacheTest, ImportsWarmBaseCache) {
  SocialNetwork net(Cycle(6));
  RestrictedInterface base(net);
  base.Query(3);
  ConcurrentInterfaceCache cache(base);
  EXPECT_TRUE(cache.IsCached(3));
  cache.Query(3);
  EXPECT_EQ(cache.QueryCost(), 1u);  // no re-pay for the warm node
}

TEST(ConcurrentInterfaceCacheTest, TakesOverLatencySimulation) {
  SocialNetwork net(Cycle(6));
  RestrictedInterface base(net);
  base.SetSimulatedLatency(std::chrono::microseconds(100));
  ConcurrentInterfaceCache cache(base);
  EXPECT_EQ(base.simulated_latency().count(), 0);
  EXPECT_EQ(cache.simulated_latency().count(), 100);
}

TEST(ConcurrentInterfaceCacheTest, OneUniqueQueryPerNodeUnderContention) {
  // 8 threads race over the same node set, with enough simulated latency
  // that fetches of one node genuinely overlap: the in-flight table must
  // collapse every race to a single paid query.
  SocialNetwork net(Complete(24));
  RestrictedInterface base(net);
  base.SetSimulatedLatency(std::chrono::microseconds(300));
  ConcurrentInterfaceCache cache(base);

  constexpr size_t kThreads = 8;
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &failures, &net] {
      for (NodeId v = 0; v < net.num_users(); ++v) {
        auto r = cache.Query(v);
        if (!r || r->user != v) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(cache.QueryCost(), net.num_users());
  EXPECT_EQ(cache.TotalRequests(), kThreads * net.num_users());
}

TEST(ConcurrentInterfaceCacheTest, BatchQueryDedupesAcrossRacingBatches) {
  SocialNetwork net(Complete(32));
  RestrictedInterface base(net);
  base.SetSimulatedLatency(std::chrono::microseconds(200));
  base.SetMaxBatchSize(8);
  ConcurrentInterfaceCache cache(base);

  // Two overlapping id ranges fetched from two threads simultaneously:
  // cost must equal the union, each id answered in place.
  std::vector<NodeId> first, second;
  for (NodeId v = 0; v < 24; ++v) first.push_back(v);
  for (NodeId v = 8; v < 32; ++v) second.push_back(v);
  std::atomic<size_t> failures{0};
  auto fetch = [&cache, &failures](const std::vector<NodeId>& ids) {
    auto results = cache.BatchQuery(ids);
    for (size_t i = 0; i < ids.size(); ++i) {
      if (!results[i] || results[i]->user != ids[i]) failures.fetch_add(1);
    }
  };
  std::thread a(fetch, first), b(fetch, second);
  a.join();
  b.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(cache.QueryCost(), 32u);
}

TEST(ConcurrentInterfaceCacheTest, BudgetEnforcedExactlyAcrossThreads) {
  SocialNetwork net(Complete(64));
  RestrictedInterface base(net);
  ConcurrentInterfaceCache cache(base);
  constexpr uint64_t kBudget = 40;
  cache.SetBudget(kBudget);

  constexpr size_t kThreads = 8;
  std::atomic<uint64_t> granted{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    // Disjoint id ranges: every successful query is a unique paid fetch.
    threads.emplace_back([&cache, &granted, t] {
      for (NodeId v = static_cast<NodeId>(t * 8);
           v < static_cast<NodeId>(t * 8 + 8); ++v) {
        if (cache.Query(v)) granted.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cache.QueryCost(), kBudget);
  EXPECT_EQ(granted.load(), kBudget);
  // Cached nodes still answer after exhaustion; new nodes do not.
  uint64_t hits = 0;
  for (NodeId v = 0; v < 64; ++v) {
    if (cache.IsCached(v)) {
      EXPECT_TRUE(cache.Query(v).has_value());
      ++hits;
    }
  }
  EXPECT_EQ(hits, kBudget);
  EXPECT_EQ(cache.QueryCost(), kBudget);
}

TEST(ConcurrentInterfaceCacheTest, BatchQueryEmptyBatchIsFree) {
  SocialNetwork net(Cycle(8));
  RestrictedInterface base(net);
  ConcurrentInterfaceCache cache(base);
  std::vector<NodeId> ids;
  EXPECT_TRUE(cache.BatchQuery(ids).empty());
  EXPECT_EQ(cache.QueryCost(), 0u);
  EXPECT_EQ(cache.TotalRequests(), 0u);
}

TEST(ConcurrentInterfaceCacheTest, BatchQueryDuplicateIdsCostOne) {
  SocialNetwork net(Cycle(8));
  RestrictedInterface base(net);
  ConcurrentInterfaceCache cache(base);
  std::vector<NodeId> ids = {5, 5, 5, 2, 5};
  auto results = cache.BatchQuery(ids);
  ASSERT_EQ(results.size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(results[i].has_value());
    EXPECT_EQ(results[i]->user, ids[i]);
  }
  EXPECT_EQ(cache.QueryCost(), 2u);
  EXPECT_EQ(cache.TotalRequests(), 5u);
}

TEST(ConcurrentInterfaceCacheTest, BatchQueryBudgetRunsOutMidChunk) {
  SocialNetwork net(Cycle(8));
  RestrictedInterface base(net);
  base.SetMaxBatchSize(4);
  ConcurrentInterfaceCache cache(base);
  cache.SetBudget(2);
  std::vector<NodeId> ids = {0, 1, 2, 3};
  auto results = cache.BatchQuery(ids);
  EXPECT_TRUE(results[0].has_value());
  EXPECT_TRUE(results[1].has_value());
  EXPECT_FALSE(results[2].has_value());
  EXPECT_FALSE(results[3].has_value());
  EXPECT_EQ(cache.QueryCost(), 2u);
}

TEST(ConcurrentInterfaceCacheTest, QueryRefHitPathIsLockFreeAndCounted) {
  SocialNetwork net(Cycle(8));
  RestrictedInterface base(net);
  ConcurrentInterfaceCache cache(base);
  auto miss = cache.QueryRef(3);  // miss goes through the full machinery
  ASSERT_TRUE(miss.has_value());
  EXPECT_EQ(cache.QueryCost(), 1u);
  auto hit = cache.QueryRef(3);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->degree(), net.graph().Degree(3));
  EXPECT_EQ(cache.QueryCost(), 1u);
  EXPECT_EQ(cache.TotalRequests(), 2u);
}

TEST(ConcurrentInterfaceCacheTest, SessionSnapshotRoundTripsThroughWrapper) {
  SocialNetwork net(Cycle(8));
  RestrictedInterface base(net);
  ConcurrentInterfaceCache cache(base);
  cache.Query(1);
  cache.Query(1);  // wrapper-level hit the base never sees
  cache.Query(4);
  const SessionSnapshot snapshot = cache.SnapshotSession();
  EXPECT_EQ(snapshot.cached_ids, (std::vector<NodeId>{1, 4}));
  EXPECT_EQ(snapshot.total_requests, 3u);  // wrapper counter, not base's

  RestrictedInterface other_base(net);
  ConcurrentInterfaceCache other(other_base);
  other.RestoreSession(snapshot);
  EXPECT_TRUE(other.IsCached(1));
  EXPECT_TRUE(other.IsCached(4));
  EXPECT_FALSE(other.IsCached(0));
  EXPECT_EQ(other.QueryCost(), 2u);
  EXPECT_EQ(other.TotalRequests(), 3u);
  // Restored hits are answered locally without new cost.
  EXPECT_TRUE(other.Query(1).has_value());
  EXPECT_EQ(other.QueryCost(), 2u);
}

TEST(ConcurrentInterfaceCacheTest, ResetClearsWrapperAndBase) {
  SocialNetwork net(Cycle(8));
  RestrictedInterface base(net);
  ConcurrentInterfaceCache cache(base);
  cache.Query(1);
  cache.Query(2);
  cache.Reset();
  EXPECT_EQ(cache.QueryCost(), 0u);
  EXPECT_EQ(cache.TotalRequests(), 0u);
  EXPECT_FALSE(cache.IsCached(1));
  EXPECT_FALSE(base.IsCached(1));
}

}  // namespace
}  // namespace mto
