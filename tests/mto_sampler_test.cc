#include "src/core/mto_sampler.h"

#include <gtest/gtest.h>

#include "src/estimate/sampling_distribution.h"
#include "src/graph/builder.h"
#include "src/graph/generators.h"
#include "src/graph/graph_stats.h"
#include "src/net/restricted_interface.h"

namespace mto {
namespace {

MtoConfig RemovalOnly() {
  MtoConfig c;
  c.enable_replacement = false;
  return c;
}

TEST(MtoSamplerTest, NameAndConfig) {
  SocialNetwork net(Cycle(5));
  RestrictedInterface iface(net);
  Rng rng(1);
  MtoSampler mto(iface, rng, 0);
  EXPECT_EQ(mto.name(), "MTO");
  EXPECT_TRUE(mto.config().enable_removal);
}

TEST(MtoSamplerTest, BadConfigThrows) {
  SocialNetwork net(Cycle(5));
  RestrictedInterface iface(net);
  Rng rng(1);
  MtoConfig bad;
  bad.replace_probability = 2.0;
  EXPECT_THROW(MtoSampler(iface, rng, 0, bad), std::invalid_argument);
  MtoConfig bad2;
  bad2.max_inner_iterations = 0;
  EXPECT_THROW(MtoSampler(iface, rng, 0, bad2), std::invalid_argument);
}

TEST(MtoSamplerTest, WalkStaysInsideOverlay) {
  SocialNetwork net(Barbell(6));
  RestrictedInterface iface(net);
  Rng rng(2);
  MtoSampler mto(iface, rng, 0);
  for (int i = 0; i < 500; ++i) {
    NodeId prev = mto.current();
    NodeId next = mto.Step();
    if (next != prev) {
      EXPECT_TRUE(mto.overlay().HasEdge(next, prev))
          << prev << " -> " << next;
    }
  }
}

TEST(MtoSamplerTest, RemovesCliqueEdgesOnBarbell) {
  SocialNetwork net(Barbell(11));
  RestrictedInterface iface(net);
  Rng rng(3);
  MtoSampler mto(iface, rng, 0, RemovalOnly());
  for (int i = 0; i < 3000; ++i) mto.Step();
  // The paper's running example: dense intra-clique edges are provably
  // non-cross-cutting and get removed until shrinking degrees and common-
  // neighbor counts block the criterion (~20 of the 110 clique edges; the
  // fixpoint is order-dependent, see EXPERIMENTS.md "Running example").
  EXPECT_GT(mto.overlay().num_removed(), 10u);
  // The bridge edge (10, 11) must never be removed: its endpoints share no
  // neighbors.
  if (mto.overlay().IsRegistered(10)) {
    EXPECT_TRUE(mto.overlay().HasEdge(10, 11));
  }
}

TEST(MtoSamplerTest, NeverDisconnectsOverlayOnBarbell) {
  SocialNetwork net(Barbell(8));
  RestrictedInterface iface(net);
  Rng rng(4);
  MtoSampler mto(iface, rng, 0);
  for (int i = 0; i < 5000; ++i) mto.Step();
  // Materialize the overlay over visited nodes; the walk must have been able
  // to reach both cliques (bridge preserved).
  std::vector<NodeId> mapping;
  Graph overlay = mto.overlay().InducedOverlay(&mapping);
  EXPECT_EQ(overlay.num_nodes(), 16u);  // all nodes visited
  EXPECT_TRUE(IsConnected(overlay));
}

TEST(MtoSamplerTest, OverlayDegreeDiagnosticReflectsRemovals) {
  SocialNetwork net(Complete(8));
  RestrictedInterface iface(net);
  Rng rng(5);
  MtoSampler mto(iface, rng, 0, RemovalOnly());
  double before = mto.CurrentDegreeForDiagnostic();
  EXPECT_DOUBLE_EQ(before, 7.0);
  for (int i = 0; i < 500; ++i) mto.Step();
  // Removals happened, so some node's diagnostic degree dropped.
  EXPECT_GT(mto.overlay().num_removed(), 0u);
}

TEST(MtoSamplerTest, ReplacementOnlyOnDegreeThree) {
  // Cycle has all degrees 2: replacement never applies, removal never fires
  // (no common neighbors) -> overlay stays identical to the original.
  SocialNetwork net(Cycle(12));
  RestrictedInterface iface(net);
  Rng rng(6);
  MtoSampler mto(iface, rng, 0);
  for (int i = 0; i < 1000; ++i) mto.Step();
  EXPECT_EQ(mto.overlay().num_removed(), 0u);
  EXPECT_EQ(mto.overlay().num_added(), 0u);
}

TEST(MtoSamplerTest, ReplacementRewiresDegreeThreeNeighbors) {
  // Star-of-triangles: build a graph with plenty of degree-3 nodes.
  Rng grng(7);
  Graph g = WattsStrogatz(60, 1, 0.0, grng);  // ring, all degree 2
  GraphBuilder b;
  for (const Edge& e : g.Edges()) b.AddEdge(e.u, e.v);
  // Chords every 4 nodes create degree-3 nodes.
  for (NodeId v = 0; v < 60; v += 4) b.AddEdge(v, (v + 2) % 60);
  SocialNetwork net(b.Build());
  RestrictedInterface iface(net);
  Rng rng(8);
  MtoConfig config;
  config.enable_removal = false;  // isolate the replacement rule
  config.replace_probability = 1.0;
  MtoSampler mto(iface, rng, 0, config);
  for (int i = 0; i < 4000; ++i) mto.Step();
  EXPECT_GT(mto.overlay().num_added(), 0u);
  EXPECT_EQ(mto.overlay().num_added(), mto.overlay().num_removed());
}

TEST(MtoSamplerTest, DisabledRulesKeepOriginalTopology) {
  SocialNetwork net(Barbell(7));
  RestrictedInterface iface(net);
  Rng rng(9);
  MtoConfig config;
  config.enable_removal = false;
  config.enable_replacement = false;
  MtoSampler mto(iface, rng, 0, config);
  for (int i = 0; i < 2000; ++i) mto.Step();
  EXPECT_EQ(mto.overlay().num_removed(), 0u);
  EXPECT_EQ(mto.overlay().num_added(), 0u);
}

TEST(MtoSamplerTest, ImportanceWeightExactModeMatchesOverlayDegree) {
  SocialNetwork net(Complete(10));
  RestrictedInterface iface(net);
  Rng rng(10);
  MtoConfig config = RemovalOnly();
  config.weight_mode = OverlayDegreeMode::kExact;
  MtoSampler mto(iface, rng, 0, config);
  double w = mto.ImportanceWeight();
  // After exact classification the weight is 1/k* for the current node.
  EXPECT_DOUBLE_EQ(w, 1.0 / mto.overlay().Degree(mto.current()));
}

TEST(MtoSamplerTest, ProbedWeightWithinPlausibleRange) {
  Rng grng(11);
  Graph g = HolmeKim(400, 5, 0.7, grng);
  SocialNetwork net(std::move(g));
  RestrictedInterface iface(net);
  Rng rng(12);
  MtoConfig config = RemovalOnly();
  config.weight_mode = OverlayDegreeMode::kProbe;
  config.degree_probe = 4;
  MtoSampler mto(iface, rng, 0, config);
  for (int i = 0; i < 50; ++i) mto.Step();
  double w = mto.ImportanceWeight();
  EXPECT_GT(w, 0.0);
  EXPECT_LE(w, 1.0);
}

TEST(MtoSamplerTest, BudgetExhaustionFreezesWalk) {
  SocialNetwork net(Complete(30));
  RestrictedInterface iface(net);
  iface.SetBudget(5);
  Rng rng(13);
  MtoSampler mto(iface, rng, 0);
  for (int i = 0; i < 200; ++i) mto.Step();
  EXPECT_EQ(iface.QueryCost(), 5u);
}

TEST(MtoSamplerTest, SpeculativeProtocolDeclaredAndPeekConsumesNoDraws) {
  SocialNetwork net(Barbell(6));
  RestrictedInterface iface(net);
  Rng rng(21);
  MtoSampler mto(iface, rng, 0);
  EXPECT_EQ(mto.step_protocol(), StepProtocol::kSpeculative);
  mto.Step();  // register the current position
  const auto state_before = rng.SaveState();
  auto proposal = mto.ProposeStep();
  ASSERT_TRUE(proposal.has_value());
  EXPECT_EQ(rng.SaveState(), state_before);  // peeked, not consumed
  // The proposal is exactly the pick the step opens with: with rewiring
  // disabled mid-run it is also where the walk lands.
  EXPECT_TRUE(mto.overlay().HasEdge(mto.current(), *proposal));
}

TEST(MtoSamplerTest, ProposeCommitTrajectoryMatchesPlainStepping) {
  // Two samplers over identical seeds: one driven by plain Step(), one by
  // the speculative propose/commit pair (with the proposal prefetched the
  // way a coalescing scheduler would). Trajectories, overlays, and
  // unique-query costs must agree bit-for-bit — in both stepping orders
  // the pair consumes exactly the draws Step() does.
  for (bool lazy : {false, true}) {
    SocialNetwork net(Barbell(8));
    RestrictedInterface iface_a(net);
    RestrictedInterface iface_b(net);
    Rng rng_a(22), rng_b(22);
    MtoConfig config;
    config.lazy = lazy;
    MtoSampler plain(iface_a, rng_a, 0, config);
    MtoSampler spec(iface_b, rng_b, 0, config);
    for (int i = 0; i < 600; ++i) {
      const NodeId a = plain.Step();
      auto proposal = spec.ProposeStep();
      if (proposal) iface_b.Query(*proposal);  // the scheduler's prefetch
      const NodeId b = proposal ? spec.CommitStep(*proposal) : spec.Step();
      ASSERT_EQ(a, b) << "step " << i << " lazy " << lazy;
    }
    EXPECT_EQ(iface_a.QueryCost(), iface_b.QueryCost()) << "lazy " << lazy;
    EXPECT_EQ(plain.overlay().num_removed(), spec.overlay().num_removed());
    EXPECT_EQ(plain.overlay().num_added(), spec.overlay().num_added());
    EXPECT_EQ(rng_a.SaveState(), rng_b.SaveState());
  }
}

TEST(MtoSamplerTest, SpeculativeMissStormStaysCorrect) {
  // A dense clique pair is a worst case for speculation: early steps
  // classify (and often remove) nearly every picked edge, invalidating the
  // speculated target over and over. Misses must be counted and the
  // trajectory must still match the sequential path exactly (covered
  // above); here we pin that misses actually occur and hits never exceed
  // commits.
  SocialNetwork net(Barbell(11));
  RestrictedInterface iface(net);
  Rng rng(23);
  MtoSampler mto(iface, rng, 0, RemovalOnly());
  for (int i = 0; i < 2000; ++i) {
    auto proposal = mto.ProposeStep();
    if (proposal) {
      iface.Query(*proposal);
      mto.CommitStep(*proposal);
    } else {
      mto.Step();
    }
  }
  EXPECT_GT(mto.overlay().num_removed(), 10u);  // the storm happened
  EXPECT_GT(mto.speculative_commits(), 0u);
  EXPECT_LT(mto.speculation_hits(), mto.speculative_commits());
  EXPECT_GT(mto.speculation_hits(), 0u);
}

TEST(MtoSamplerTest, OverlaySnapshotRestoreRoundTripsBitIdentically) {
  SocialNetwork net(Barbell(9));
  RestrictedInterface iface(net);
  Rng rng(24);
  MtoSampler original(iface, rng, 0);
  for (int i = 0; i < 1500; ++i) original.Step();

  // Checkpoint: overlay delta + position + RNG state (the service's
  // per-walker image).
  const OverlayGraph::Delta delta = original.SnapshotOverlay();
  EXPECT_FALSE(delta.registered.empty());
  EXPECT_FALSE(delta.removed.empty());
  const NodeId position = original.current();
  const auto rng_state = rng.SaveState();

  // Resume into a fresh sampler over a fresh session (cache replayed the
  // way RestoreSession would: every registered node was once queried).
  RestrictedInterface iface2(net);
  for (NodeId v = 0; v < net.num_users(); ++v) {
    if (iface.IsCached(v)) iface2.Query(v);
  }
  Rng rng2(999);  // arbitrary; overwritten by the restore
  MtoSampler resumed(iface2, rng2, 0);
  resumed.Teleport(position);
  rng2.RestoreState(rng_state);
  resumed.RestoreOverlay(
      delta, [&net](NodeId v) { return net.graph().Neighbors(v); },
      original.frozen());

  // The restored overlay is the original, bit for bit.
  for (NodeId v : delta.registered) {
    ASSERT_TRUE(resumed.overlay().IsRegistered(v));
    EXPECT_EQ(resumed.overlay().Neighbors(v), original.overlay().Neighbors(v))
        << "node " << v;
  }
  EXPECT_EQ(resumed.overlay().num_removed(), original.overlay().num_removed());
  EXPECT_EQ(resumed.overlay().num_added(), original.overlay().num_added());

  // And the continuation is the same walk.
  for (int i = 0; i < 1500; ++i) {
    ASSERT_EQ(original.Step(), resumed.Step()) << "resumed step " << i;
  }
  EXPECT_EQ(iface.QueryCost(), iface2.QueryCost());
}

TEST(MtoSamplerTest, StationaryDistributionMatchesOverlayDegrees) {
  // Long MTO walk on a small graph: empirical visit frequency must match
  // k*_v / 2|E*| of the final overlay (the walk IS an SRW on G*).
  SocialNetwork net(Barbell(5));
  RestrictedInterface iface(net);
  Rng rng(14);
  MtoConfig config = RemovalOnly();
  config.lazy = false;
  MtoSampler mto(iface, rng, 0, config);
  // Warm-up: let the topology converge first (classification is one-shot).
  for (int i = 0; i < 20000; ++i) mto.Step();
  EmpiricalDistribution dist(net.num_users());
  for (int i = 0; i < 400000; ++i) {
    mto.Step();
    dist.Record(mto.current());
  }
  std::vector<NodeId> mapping;
  Graph overlay = mto.overlay().InducedOverlay(&mapping);
  ASSERT_EQ(overlay.num_nodes(), net.num_users());
  auto ideal_overlay = IdealDegreeDistribution(overlay);
  auto p = dist.Probabilities();
  for (NodeId i = 0; i < overlay.num_nodes(); ++i) {
    EXPECT_NEAR(p[mapping[i]], ideal_overlay[i], 0.015)
        << "overlay node " << i << " (original " << mapping[i] << ")";
  }
}

}  // namespace
}  // namespace mto
