#include "src/runtime/spsc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace mto {
namespace {

TEST(SpscQueueTest, FifoOrderSingleThread) {
  SpscQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(i));
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.TryPop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.TryPop(out));
}

TEST(SpscQueueTest, CapacityRoundedToPowerOfTwoAndBounded) {
  SpscQueue<int> q(3);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_FALSE(q.TryPush(99));  // full
  int out;
  ASSERT_TRUE(q.TryPop(out));
  EXPECT_TRUE(q.TryPush(99));  // slot freed
}

TEST(SpscQueueTest, RejectsZeroCapacity) {
  EXPECT_THROW(SpscQueue<int>(0), std::invalid_argument);
}

TEST(SpscQueueTest, PopDrainsAfterClose) {
  SpscQueue<int> q(8);
  q.Push(1);
  q.Push(2);
  q.Close();
  int out;
  EXPECT_TRUE(q.Pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.Pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.Pop(out));  // closed and drained
}

TEST(SpscQueueTest, TransfersEverythingAcrossThreads) {
  // Small capacity forces both sides through their backoff paths.
  SpscQueue<uint64_t> q(16);
  constexpr uint64_t kItems = 100000;
  uint64_t consumer_sum = 0;
  uint64_t consumer_count = 0;
  std::thread consumer([&] {
    uint64_t v;
    while (q.Pop(v)) {
      consumer_sum += v;
      ++consumer_count;
    }
  });
  for (uint64_t i = 1; i <= kItems; ++i) q.Push(i);
  q.Close();
  consumer.join();
  EXPECT_EQ(consumer_count, kItems);
  EXPECT_EQ(consumer_sum, kItems * (kItems + 1) / 2);
}

TEST(SpscQueueTest, SizeApproxNeverWrapsUnderConcurrentTraffic) {
  // Regression for the SizeApprox load order: reading tail_ (producer)
  // before head_ (consumer) let a pop land between the two loads, making
  // tail - head negative — which a size_t wraps to ~2^64. The fixed order
  // reads head_ first, so the difference is bounded by items ever enqueued
  // (it may exceed instantaneous depth, never the enqueue total), and the
  // pipeline.queue_depth gauge built on it can never go negative. An
  // observer hammers SizeApprox from a third thread: the estimate must
  // stay within the total item count for the entire run.
  SpscQueue<uint64_t> q(8);
  constexpr uint64_t kItems = 60000;
  std::atomic<bool> done{false};
  uint64_t worst = 0;  // max sample seen; written by the observer only
  std::thread observer([&] {
    while (!done.load(std::memory_order_acquire)) {
      const size_t size = q.SizeApprox();
      if (size > worst) worst = size;
    }
  });
  std::thread consumer([&] {
    uint64_t v;
    while (q.Pop(v)) {
    }
  });
  for (uint64_t i = 0; i < kItems; ++i) q.Push(i);
  q.Close();
  consumer.join();
  done.store(true, std::memory_order_release);
  observer.join();
  EXPECT_LE(worst, kItems);
  EXPECT_EQ(q.SizeApprox(), 0u);  // quiescent: exact again
}

}  // namespace
}  // namespace mto
