#include "src/runtime/spsc_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace mto {
namespace {

TEST(SpscQueueTest, FifoOrderSingleThread) {
  SpscQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(i));
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(q.TryPop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.TryPop(out));
}

TEST(SpscQueueTest, CapacityRoundedToPowerOfTwoAndBounded) {
  SpscQueue<int> q(3);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.TryPush(i));
  EXPECT_FALSE(q.TryPush(99));  // full
  int out;
  ASSERT_TRUE(q.TryPop(out));
  EXPECT_TRUE(q.TryPush(99));  // slot freed
}

TEST(SpscQueueTest, RejectsZeroCapacity) {
  EXPECT_THROW(SpscQueue<int>(0), std::invalid_argument);
}

TEST(SpscQueueTest, PopDrainsAfterClose) {
  SpscQueue<int> q(8);
  q.Push(1);
  q.Push(2);
  q.Close();
  int out;
  EXPECT_TRUE(q.Pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.Pop(out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.Pop(out));  // closed and drained
}

TEST(SpscQueueTest, TransfersEverythingAcrossThreads) {
  // Small capacity forces both sides through their backoff paths.
  SpscQueue<uint64_t> q(16);
  constexpr uint64_t kItems = 100000;
  uint64_t consumer_sum = 0;
  uint64_t consumer_count = 0;
  std::thread consumer([&] {
    uint64_t v;
    while (q.Pop(v)) {
      consumer_sum += v;
      ++consumer_count;
    }
  });
  for (uint64_t i = 1; i <= kItems; ++i) q.Push(i);
  q.Close();
  consumer.join();
  EXPECT_EQ(consumer_count, kItems);
  EXPECT_EQ(consumer_sum, kItems * (kItems + 1) / 2);
}

}  // namespace
}  // namespace mto
