#include "src/spectral/conductance.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/graph/builder.h"
#include "src/graph/generators.h"

namespace mto {
namespace {

TEST(CutRatioTest, PaperMetricCountsIncidentEdges) {
  Graph g = Barbell(3);
  std::vector<bool> in_s(6, false);
  in_s[0] = in_s[1] = in_s[2] = true;  // left triangle
  // cut = 1 bridge; edges incident to S = 3 internal + 1 bridge = 4.
  EXPECT_DOUBLE_EQ(CutRatio(g, in_s), 1.0 / 4.0);
}

TEST(CutRatioTest, VolumeMetricCountsDegrees) {
  Graph g = Barbell(3);
  std::vector<bool> in_s(6, false);
  in_s[0] = in_s[1] = in_s[2] = true;
  // vol(S) = 2 + 2 + 3 = 7.
  EXPECT_DOUBLE_EQ(CutRatio(g, in_s, CutMetric::kDegreeVolume), 1.0 / 7.0);
}

TEST(CutRatioTest, EmptySideIsInfinite) {
  Graph g = Cycle(4);
  std::vector<bool> none(4, false);
  EXPECT_TRUE(std::isinf(CutRatio(g, none)));
  std::vector<bool> all(4, true);
  EXPECT_TRUE(std::isinf(CutRatio(g, all)));
}

TEST(CutRatioTest, MaskSizeMismatchThrows) {
  Graph g = Cycle(4);
  EXPECT_THROW(CutRatio(g, std::vector<bool>(3, false)),
               std::invalid_argument);
}

TEST(ExactConductanceTest, BarbellRunningExample) {
  // Paper Section II-D: Φ(barbell-11) = 1 / (C(11,2) + 1) = 1/56 ≈ 0.018.
  EXPECT_NEAR(ExactConductance(Barbell(11)), 1.0 / 56.0, 1e-12);
}

TEST(ExactConductanceTest, BarbellVolumeMetric) {
  // Classical conductance of the same cut: 1 / vol(left) = 1/111.
  EXPECT_NEAR(ExactConductance(Barbell(11), CutMetric::kDegreeVolume),
              1.0 / 111.0, 1e-12);
}

TEST(ExactConductanceTest, CompleteGraphEvenN) {
  // K_n, even n, balanced cut, k = n/2: cut = k², incident = C(k,2) + k²
  // -> Φ = 2k / (3k - 1).
  for (NodeId n : {4u, 6u, 8u}) {
    double k = n / 2.0;
    double expected = 2.0 * k / (3.0 * k - 1.0);
    EXPECT_NEAR(ExactConductance(Complete(n)), expected, 1e-12) << "K_" << n;
  }
}

TEST(ExactConductanceTest, CompleteGraphVolumeMetric) {
  // Balanced cut of K_n: k² / (k (n-1)) = k / (n-1).
  for (NodeId n : {4u, 6u, 8u}) {
    double expected = (n / 2.0) / (n - 1.0);
    EXPECT_NEAR(ExactConductance(Complete(n), CutMetric::kDegreeVolume),
                expected, 1e-12);
  }
}

TEST(ExactConductanceTest, CycleValue) {
  // Even cycle, antipodal cut: cut 2, incident edges n/2 + 1 -> 4/(n+2).
  EXPECT_NEAR(ExactConductance(Cycle(8)), 4.0 / 10.0, 1e-12);
  EXPECT_NEAR(ExactConductance(Cycle(12)), 4.0 / 14.0, 1e-12);
  EXPECT_NEAR(ExactConductance(Cycle(8), CutMetric::kDegreeVolume),
              2.0 / 8.0, 1e-12);
}

TEST(ExactConductanceTest, PathHalfCut) {
  // P4: best cut is the middle edge: cut 1, incident edges 2 -> 1/2.
  EXPECT_NEAR(ExactConductance(Path(4)), 1.0 / 2.0, 1e-12);
  EXPECT_NEAR(ExactConductance(Path(4), CutMetric::kDegreeVolume),
              1.0 / 3.0, 1e-12);
}

TEST(ExactConductanceTest, DisconnectedIsZero) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  EXPECT_DOUBLE_EQ(ExactConductance(b.Build()), 0.0);
}

TEST(ExactConductanceTest, TooLargeThrows) {
  Rng rng(1);
  Graph g = ErdosRenyiM(30, 100, rng);
  EXPECT_THROW(ExactConductance(g), std::invalid_argument);
  EXPECT_THROW(ExactConductance(Graph(3, {})), std::invalid_argument);
}

TEST(CrossCuttingEdgesTest, BarbellBridgeOnly) {
  // The unique minimizing cut of the barbell crosses exactly the bridge.
  Graph g = Barbell(6);
  auto cross = CrossCuttingEdges(g);
  ASSERT_EQ(cross.size(), 1u);
  EXPECT_EQ(cross[0], (Edge{5, 6}));
}

TEST(CrossCuttingEdgesTest, CycleHasManyMinimizers) {
  // Every antipodal cut of an even cycle attains Φ; their union covers all
  // edges.
  Graph g = Cycle(6);
  auto cross = CrossCuttingEdges(g);
  EXPECT_EQ(cross.size(), 6u);
}

TEST(CrossCuttingEdgesTest, TwoTrianglesBridge) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(0, 2);
  b.AddEdge(3, 4);
  b.AddEdge(4, 5);
  b.AddEdge(3, 5);
  b.AddEdge(2, 3);  // bridge
  auto cross = CrossCuttingEdges(b.Build());
  ASSERT_EQ(cross.size(), 1u);
  EXPECT_EQ(cross[0], (Edge{2, 3}));
}

TEST(SweepConductanceTest, UpperBoundsExact) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    Graph g = ErdosRenyiM(14, 30, rng);
    double exact = ExactConductance(g);
    if (exact == 0.0) continue;  // disconnected
    EXPECT_GE(SweepConductance(g) + 1e-9, exact) << "seed " << seed;
  }
}

TEST(SweepConductanceTest, FindsBarbellBottleneck) {
  // On the barbell the sweep cut is exact: the Fiedler vector separates
  // the cliques.
  Graph g = Barbell(8);
  EXPECT_NEAR(SweepConductance(g), ExactConductance(g), 1e-9);
  EXPECT_NEAR(SweepConductance(g, CutMetric::kDegreeVolume),
              ExactConductance(g, CutMetric::kDegreeVolume), 1e-9);
}

TEST(SweepConductanceTest, TrivialGraphThrows) {
  EXPECT_THROW(SweepConductance(Graph(1, {})), std::invalid_argument);
}

}  // namespace
}  // namespace mto
