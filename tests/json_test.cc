#include "src/util/json.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mto {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null").is_null());
  EXPECT_EQ(ParseJson("true").AsBool(), true);
  EXPECT_EQ(ParseJson("false").AsBool(), false);
  EXPECT_DOUBLE_EQ(ParseJson("3.25").AsDouble(), 3.25);
  EXPECT_DOUBLE_EQ(ParseJson("-2e3").AsDouble(), -2000.0);
  EXPECT_EQ(ParseJson("\"hi\"").AsString(), "hi");
}

TEST(JsonTest, ParsesNestedStructure) {
  const JsonValue v = ParseJson(R"({
    "name": "pool",
    "backends": [{"rate": 10.5}, {"rate": 2}],
    "enabled": true,
    "nested": {"a": [1, 2, 3]}
  })");
  EXPECT_EQ(v.At("name").AsString(), "pool");
  const auto& backends = v.At("backends").AsArray();
  ASSERT_EQ(backends.size(), 2u);
  EXPECT_DOUBLE_EQ(backends[0].At("rate").AsDouble(), 10.5);
  EXPECT_EQ(v.At("nested").At("a").AsArray().size(), 3u);
  EXPECT_TRUE(v.Has("enabled"));
  EXPECT_FALSE(v.Has("absent"));
}

TEST(JsonTest, ParsesStringEscapes) {
  EXPECT_EQ(ParseJson(R"("a\"b\\c\nd\tA")").AsString(), "a\"b\\c\nd\tA");
}

TEST(JsonTest, DecodesUnicodeEscapesAsUtf8) {
  EXPECT_EQ(ParseJson(R"("\u0041")").AsString(), "A");            // 1 byte
  EXPECT_EQ(ParseJson(R"("\u00e9")").AsString(), "\xC3\xA9");     // 2 bytes
  EXPECT_EQ(ParseJson(R"("\u20AC")").AsString(), "\xE2\x82\xAC");  // 3 bytes
  // Surrogate pairs decode to one astral code point (4-byte UTF-8), not
  // two garbage 3-byte sequences: U+1F600, then the last point U+10FFFF.
  EXPECT_EQ(ParseJson(R"("\uD83D\uDE00")").AsString(), "\xF0\x9F\x98\x80");
  EXPECT_EQ(ParseJson(R"("\uDBFF\uDFFF")").AsString(), "\xF4\x8F\xBF\xBF");
}

TEST(JsonTest, SurrogatePairsRoundTripThroughDump) {
  // Dump emits the decoded UTF-8 bytes raw (they are above 0x1F), so
  // parse -> dump -> parse is the identity on astral characters.
  const JsonValue v = ParseJson(R"({"emoji": "\uD83D\uDE00 ok"})");
  const JsonValue again = ParseJson(DumpJson(v));
  EXPECT_EQ(again.At("emoji").AsString(), v.At("emoji").AsString());
  EXPECT_EQ(again.At("emoji").AsString(), "\xF0\x9F\x98\x80 ok");
}

TEST(JsonTest, LoneAndMalformedSurrogatesAreRejected) {
  EXPECT_THROW(ParseJson(R"("\uD800")"), std::runtime_error);  // lone high
  EXPECT_THROW(ParseJson(R"("\uDC00")"), std::runtime_error);  // lone low
  EXPECT_THROW(ParseJson(R"("\uD800A")"), std::runtime_error);
  EXPECT_THROW(ParseJson(R"("\uD800\u0041")"), std::runtime_error);
  EXPECT_THROW(ParseJson(R"("\uD8")"), std::runtime_error);  // short escape
  EXPECT_THROW(ParseJson(R"("\uD83D\uD83D")"), std::runtime_error);
}

TEST(JsonTest, AsUintRejectsFractionsNegativesAndOverflow) {
  EXPECT_EQ(ParseJson("42").AsUint(), 42u);
  EXPECT_THROW(ParseJson("1.5").AsUint(), std::runtime_error);
  EXPECT_THROW(ParseJson("-1").AsUint(), std::runtime_error);
  EXPECT_THROW(ParseJson("1e20").AsUint(), std::runtime_error);  // >= 2^64
}

TEST(JsonTest, RejectsMalformedDocuments) {
  EXPECT_THROW(ParseJson(""), std::runtime_error);
  EXPECT_THROW(ParseJson("{"), std::runtime_error);
  EXPECT_THROW(ParseJson("[1,]"), std::runtime_error);
  EXPECT_THROW(ParseJson("{\"a\": 1,}"), std::runtime_error);
  EXPECT_THROW(ParseJson("tru"), std::runtime_error);
  EXPECT_THROW(ParseJson("1 2"), std::runtime_error);  // trailing content
  EXPECT_THROW(ParseJson("\"unterminated"), std::runtime_error);
  EXPECT_THROW(ParseJson("{\"a\": 1, \"a\": 2}"), std::runtime_error);
}

TEST(JsonTest, TypeMismatchThrows) {
  const JsonValue v = ParseJson("{\"a\": 1}");
  EXPECT_THROW(v.At("a").AsString(), std::runtime_error);
  EXPECT_THROW(v.At("missing"), std::runtime_error);
  EXPECT_THROW(v.AsArray(), std::runtime_error);
}

TEST(JsonTest, KeysAreSorted) {
  const JsonValue v = ParseJson("{\"b\": 1, \"a\": 2, \"c\": 3}");
  EXPECT_EQ(v.Keys(), (std::vector<std::string>{"a", "b", "c"}));
}

}  // namespace
}  // namespace mto
