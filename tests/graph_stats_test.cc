#include "src/graph/graph_stats.h"

#include <gtest/gtest.h>

#include "src/graph/builder.h"
#include "src/graph/generators.h"

namespace mto {
namespace {

TEST(GraphStatsTest, BfsDistancesOnPath) {
  Graph g = Path(5);
  auto d = BfsDistances(g, 0);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(GraphStatsTest, BfsUnreachable) {
  GraphBuilder b;
  b.ReserveNodes(4);
  b.AddEdge(0, 1);
  auto d = BfsDistances(b.Build(), 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(GraphStatsTest, ComponentsAndConnectivity) {
  GraphBuilder b;
  b.AddEdge(0, 1);
  b.AddEdge(2, 3);
  b.ReserveNodes(5);
  Graph g = b.Build();
  EXPECT_EQ(NumComponents(g), 3u);
  EXPECT_FALSE(IsConnected(g));
  EXPECT_TRUE(IsConnected(Cycle(4)));
  EXPECT_TRUE(IsConnected(Graph()));
}

TEST(GraphStatsTest, ClusteringOnCompleteGraph) {
  Graph g = Complete(5);
  for (NodeId v = 0; v < 5; ++v) EXPECT_DOUBLE_EQ(LocalClustering(g, v), 1.0);
  EXPECT_DOUBLE_EQ(AverageClustering(g), 1.0);
  EXPECT_DOUBLE_EQ(Transitivity(g), 1.0);
}

TEST(GraphStatsTest, ClusteringOnStarIsZero) {
  Graph g = Star(6);
  EXPECT_DOUBLE_EQ(AverageClustering(g), 0.0);
  EXPECT_DOUBLE_EQ(Transitivity(g), 0.0);
}

TEST(GraphStatsTest, ClusteringKnownValue) {
  // Triangle plus a pendant on node 0: c(0) = 1/3, c(1) = c(2) = 1, c(3)=0.
  Graph g(4, {{0, 1}, {1, 2}, {0, 2}, {0, 3}});
  EXPECT_NEAR(LocalClustering(g, 0), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(LocalClustering(g, 1), 1.0);
  EXPECT_DOUBLE_EQ(LocalClustering(g, 3), 0.0);
  EXPECT_NEAR(AverageClustering(g), (1.0 / 3.0 + 1.0 + 1.0 + 0.0) / 4.0, 1e-12);
}

TEST(GraphStatsTest, DegreeHistogram) {
  Graph g = Star(5);
  auto h = DegreeHistogram(g);
  ASSERT_EQ(h.size(), 5u);
  EXPECT_EQ(h[1], 4u);
  EXPECT_EQ(h[4], 1u);
  EXPECT_EQ(h[2], 0u);
}

TEST(GraphStatsTest, AverageDegree) {
  EXPECT_DOUBLE_EQ(AverageDegree(Cycle(10)), 2.0);
  EXPECT_DOUBLE_EQ(AverageDegree(Complete(5)), 4.0);
  EXPECT_DOUBLE_EQ(AverageDegree(Graph()), 0.0);
}

TEST(GraphStatsTest, ExactDiameter) {
  EXPECT_EQ(ExactDiameter(Path(6)), 5u);
  EXPECT_EQ(ExactDiameter(Cycle(8)), 4u);
  EXPECT_EQ(ExactDiameter(Complete(9)), 1u);
  EXPECT_EQ(ExactDiameter(Barbell(4)), 3u);
}

TEST(GraphStatsTest, EffectiveDiameterCompleteGraph) {
  Rng rng(1);
  // All pairs at distance 1: 90% effective diameter interpolates inside
  // the d = 1 bucket, so it lies in (0, 1].
  double d = EffectiveDiameter90(Complete(20), rng, 20);
  EXPECT_GT(d, 0.0);
  EXPECT_LE(d, 1.0);
}

TEST(GraphStatsTest, EffectiveDiameterPathGrowsWithLength) {
  Rng rng(2);
  double d_short = EffectiveDiameter90(Path(10), rng, 10);
  double d_long = EffectiveDiameter90(Path(100), rng, 100);
  EXPECT_LT(d_short, d_long);
  EXPECT_GT(d_long, 50.0);  // 90% of pair distances on a long path are big
}

TEST(GraphStatsTest, EffectiveDiameterSampledCloseToExact) {
  Rng rng1(3), rng2(4);
  Graph g = BarabasiAlbert(800, 3, rng1);
  Rng full_rng(5), sample_rng(6);
  double exact = EffectiveDiameter90(g, full_rng, 800);
  double sampled = EffectiveDiameter90(g, sample_rng, 64);
  EXPECT_NEAR(sampled, exact, 0.5);
  (void)rng2;
}

TEST(GraphStatsTest, EmptyGraphDiameterZero) {
  Rng rng(7);
  EXPECT_DOUBLE_EQ(EffectiveDiameter90(Graph(), rng), 0.0);
}

}  // namespace
}  // namespace mto
