// End-to-end tests tying the whole pipeline together, anchored on the
// paper's running example (Sections II-E, III-B, III-C).

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "src/core/full_overlay.h"
#include "src/core/mto_sampler.h"
#include "src/experiments/error_vs_cost.h"
#include "src/experiments/harness.h"
#include "src/graph/builder.h"
#include "src/graph/datasets.h"
#include "src/graph/generators.h"
#include "src/graph/graph_stats.h"
#include "src/graph/io.h"
#include "src/spectral/conductance.h"
#include "src/spectral/eigen.h"
#include "src/spectral/mixing.h"

namespace mto {
namespace {

TEST(RunningExampleTest, OriginalConductanceMatchesPaper) {
  Graph g = Barbell(11);
  // Φ(G) = 1/(C(11,2)+1) = 1/56 ≈ 0.018 (paper Section II-D).
  EXPECT_NEAR(ExactConductance(g), 0.018, 0.0005);
}

TEST(RunningExampleTest, RemovalThenReplacementIncreasesConductance) {
  Graph g = Barbell(11);
  const double phi0 = ExactConductance(g);

  MtoConfig removal_only;
  removal_only.enable_replacement = false;
  Rng rng1(1);
  auto removed = BuildFullOverlay(g, removal_only, rng1);
  const double phi1 = ExactConductance(removed.overlay);
  EXPECT_GT(phi1, phi0);

  MtoConfig both;
  both.replace_probability = 1.0;
  Rng rng2(2);
  auto rewired = BuildFullOverlay(g, both, rng2);
  const double phi2 = ExactConductance(rewired.overlay);
  // Replacement rarely triggers on the barbell (no overlay node settles at
  // degree 3 under this sweep order), so the combined gain is dominated by
  // removals. The paper's illustrative Fig-1 overlay reaches 0.053/0.105;
  // our algorithmic fixpoint reaches ~0.022 — same direction, smaller
  // magnitude (see EXPERIMENTS.md "Running example").
  EXPECT_GT(phi2, phi0 * 1.1);
}

TEST(RunningExampleTest, MixingBoundShrinksLikePaper) {
  // Paper: removal alone reduces the mixing-time bound to ~0.115x.
  Graph g = Barbell(11);
  const double phi0 = ExactConductance(g);
  MtoConfig removal_only;
  removal_only.enable_replacement = false;
  Rng rng(3);
  auto removed = BuildFullOverlay(g, removal_only, rng);
  const double phi1 = ExactConductance(removed.overlay);
  const double ratio = MixingTimeUpperBoundCoefficient(phi1) /
                       MixingTimeUpperBoundCoefficient(phi0);
  // Measured fixpoint: Φ 0.0179 -> 0.0227, bound ratio ~0.62 (the paper's
  // hand-constructed overlay reaches 0.115; see EXPERIMENTS.md).
  EXPECT_LT(ratio, 0.75);
}

TEST(RunningExampleTest, SlemMixingTimeDropsOnOverlay) {
  Graph g = Barbell(11);
  const double t0 = MixingTimeFromSlem(Slem(g, {.laziness = 0.5}));
  MtoConfig config;
  Rng rng(4);
  auto overlay = BuildFullOverlay(g, config, rng);
  ASSERT_TRUE(IsConnected(overlay.overlay));
  const double t1 =
      MixingTimeFromSlem(Slem(overlay.overlay, {.laziness = 0.5}));
  // Measured: 128.8 -> ~107 steps (-17%).
  EXPECT_LT(t1, t0 * 0.95);
}

TEST(PipelineTest, AllFourSamplersEstimateDegreeOnDataset) {
  SocialNetwork net =
      SocialNetwork::WithSyntheticProfiles(MakeDataset("epinions_small"), 3);
  const double truth = net.TrueAverageDegree();
  for (auto kind : {SamplerKind::kSrw, SamplerKind::kMhrw,
                    SamplerKind::kRandomJump, SamplerKind::kMto}) {
    WalkRunConfig config;
    config.kind = kind;
    config.num_samples = 1500;
    config.thinning = 4;
    config.max_burn_in_steps = 5000;
    auto result = RunAggregateEstimation(net, config, 1234);
    EXPECT_NEAR(result.final_estimate, truth, truth * 0.3)
        << SamplerName(kind);
    EXPECT_EQ(result.samples.size(), 1500u) << SamplerName(kind);
  }
}

TEST(PipelineTest, MtoRemovesManyEdgesOnClusteredDataset) {
  SocialNetwork net(MakeDataset("epinions_small"));
  RestrictedInterface iface(net);
  Rng rng(5);
  MtoSampler mto(iface, rng, 0);
  for (int i = 0; i < 20000; ++i) mto.Step();
  // Clustered powerlaw graphs are exactly where Theorem 3 fires a lot.
  EXPECT_GT(mto.overlay().num_removed(), 100u);
}

TEST(PipelineTest, MtoMatchesSrwAccuracyAtFixedBudget) {
  // Under the paper's unique-query accounting (duplicates answered from
  // cache), our measured reproduction finding is parity-or-better for MTO
  // at equal budget, not the paper's dramatic factors (EXPERIMENTS.md,
  // "Sampler comparison"). This test pins the reproducible part: at a fixed
  // budget MTO's mean absolute error is within 25% of SRW's, and both are
  // accurate in absolute terms.
  SocialNetwork net(MakeDataset("slashdot_b_small"));
  const double truth = net.TrueAverageDegree();
  auto mean_error = [&](SamplerKind kind) {
    double total = 0.0;
    const int kRuns = 24;
    for (int r = 0; r < kRuns; ++r) {
      WalkRunConfig config;
      config.kind = kind;
      config.num_samples = 220;  // ~900-1200 unique queries per run
      config.thinning = 4;
      config.max_burn_in_steps = 4000;
      auto run = RunAggregateEstimation(net, config, 300 + 17 * r);
      total += std::abs(run.final_estimate - truth) / truth;
    }
    return total / kRuns;
  };
  const double srw = mean_error(SamplerKind::kSrw);
  const double mto = mean_error(SamplerKind::kMto);
  EXPECT_LT(mto, srw * 1.25);
  EXPECT_LT(mto, 0.15);
  EXPECT_LT(srw, 0.15);
}

TEST(PipelineTest, DirectedSnapshotToWalkRoundTrip) {
  // Simulate the paper's Epinions pipeline end to end: a directed edge list
  // is converted to its mutual-undirected core, served through the
  // restricted interface, and walked.
  std::ostringstream directed;
  Rng rng(6);
  const NodeId n = 200;
  for (int i = 0; i < 2000; ++i) {
    NodeId u = static_cast<NodeId>(rng.UniformInt(n));
    NodeId v = static_cast<NodeId>(rng.UniformInt(n));
    if (u == v) continue;
    directed << u << " " << v << "\n";
    if (rng.Bernoulli(0.6)) directed << v << " " << u << "\n";  // reciprocate
  }
  std::istringstream in(directed.str());
  Graph g = LargestComponent(ReadDirectedAsMutual(in, /*compact_ids=*/false));
  ASSERT_GT(g.num_edges(), 50u);
  SocialNetwork net(g);
  RestrictedInterface iface(net);
  Rng wrng(7);
  MtoSampler mto(iface, wrng, 0);
  for (int i = 0; i < 500; ++i) mto.Step();
  EXPECT_GT(iface.QueryCost(), 10u);
}

TEST(PipelineTest, GewekeThresholdTradesCostForBias) {
  // Fig 9's mechanism: a looser Geweke threshold burns in faster.
  SocialNetwork net(MakeDataset("slashdot_b_small"));
  WalkRunConfig strict;
  strict.geweke_threshold = 0.05;
  strict.num_samples = 1;
  strict.max_burn_in_steps = 50000;
  WalkRunConfig loose = strict;
  loose.geweke_threshold = 0.8;
  auto strict_run = RunAggregateEstimation(net, strict, 42);
  auto loose_run = RunAggregateEstimation(net, loose, 42);
  EXPECT_LE(loose_run.burn_in_steps, strict_run.burn_in_steps);
}

TEST(PipelineTest, AttributeAggregatesOnGplusStandIn) {
  SocialNetwork net =
      SocialNetwork::WithSyntheticProfiles(MakeDataset("gplus_small"), 8);
  WalkRunConfig config;
  config.kind = SamplerKind::kMto;
  config.attribute = Attribute::kDescriptionLength;
  config.num_samples = 2500;
  config.thinning = 4;
  auto result = RunAggregateEstimation(net, config, 77);
  const double truth = net.TrueAverageDescriptionLength();
  EXPECT_NEAR(result.final_estimate, truth, truth * 0.35);
}

}  // namespace
}  // namespace mto
