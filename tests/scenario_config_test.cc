#include "src/service/scenario_config.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

namespace mto {
namespace {

constexpr const char* kFullDocument = R"({
  "dataset": "epinions_small",
  "seed": 42,
  "sampler": "mhrw",
  "attribute": "description_length",
  "walkers": 16,
  "threads": 4,
  "coalesce_frontier": true,
  "geweke": {"threshold": 0.2, "min_length": 100, "check_every": 25},
  "max_burn_in_rounds": 500,
  "num_samples": 64,
  "thinning": 10,
  "total_budget": 9000,
  "strategy": "budget_aware",
  "fault_seed": 1337,
  "retry": {"max_attempts_per_backend": 5, "base_backoff_us": 2000,
            "multiplier": 1.5, "max_backoff_us": 50000, "jitter": 0.25},
  "backends": [
    {"name": "us-east", "budget": 5000, "rate_per_sec": 50,
     "burst": 10, "latency_us": 200, "latency_sigma": 0.3,
     "timeout_rate": 0.02, "error_rate": 0.05, "quota_rate": 0.01,
     "timeout_us": 40000},
    {"name": "eu-west", "latency_us": 350}
  ],
  "checkpoint": {"path": "crawl.ckpt", "every_units": 4}
})";

TEST(ScenarioConfigTest, ParsesFullDocument) {
  const ScenarioConfig config = ScenarioConfig::FromJsonText(kFullDocument);
  EXPECT_EQ(config.dataset, "epinions_small");
  EXPECT_EQ(config.seed, 42u);
  EXPECT_EQ(config.sampler, SamplerKind::kMhrw);
  EXPECT_EQ(config.attribute, Attribute::kDescriptionLength);
  EXPECT_EQ(config.num_walkers, 16u);
  EXPECT_EQ(config.num_threads, 4u);
  EXPECT_TRUE(config.coalesce_frontier);
  EXPECT_DOUBLE_EQ(config.geweke_threshold, 0.2);
  EXPECT_EQ(config.geweke_check_every, 25u);
  EXPECT_EQ(config.max_burn_in_rounds, 500u);
  EXPECT_EQ(config.num_samples, 64u);
  EXPECT_EQ(config.total_budget, 9000u);
  EXPECT_EQ(config.strategy, BackendSelection::kBudgetAware);
  EXPECT_EQ(config.fault_seed, 1337u);
  EXPECT_EQ(config.retry.max_attempts_per_backend, 5u);
  EXPECT_DOUBLE_EQ(config.retry.jitter, 0.25);
  ASSERT_EQ(config.backends.size(), 2u);
  EXPECT_EQ(config.backends[0].name, "us-east");
  ASSERT_TRUE(config.backends[0].budget.has_value());
  EXPECT_EQ(*config.backends[0].budget, 5000u);
  EXPECT_EQ(config.backends[0].latency_mean_us, 200u);
  EXPECT_EQ(config.backends[1].name, "eu-west");
  EXPECT_FALSE(config.backends[1].budget.has_value());
  EXPECT_EQ(config.checkpoint.path, "crawl.ckpt");
  EXPECT_EQ(config.checkpoint.every_units, 4u);
}

TEST(ScenarioConfigTest, EmptyDocumentYieldsDefaults) {
  const ScenarioConfig config = ScenarioConfig::FromJsonText("{}");
  EXPECT_EQ(config.sampler, SamplerKind::kSrw);
  EXPECT_EQ(config.num_walkers, 8u);
  EXPECT_TRUE(config.backends.empty());
  EXPECT_EQ(config.strategy, BackendSelection::kSharded);
  EXPECT_EQ(config.checkpoint.every_units, 0u);
}

TEST(ScenarioConfigTest, UnknownKeysAreRejected) {
  EXPECT_THROW(ScenarioConfig::FromJsonText(R"({"wakers": 8})"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioConfig::FromJsonText(
                   R"({"retry": {"mx_attempts": 3}})"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioConfig::FromJsonText(
                   R"({"backends": [{"latency": 5}]})"),
               std::invalid_argument);
  // Every nested block is strict, not just the top level.
  EXPECT_THROW(ScenarioConfig::FromJsonText(
                   R"({"geweke": {"treshold": 0.1}})"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioConfig::FromJsonText(
                   R"({"checkpoint": {"path": "x.ckpt", "every": 2}})"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioConfig::FromJsonText(
                   R"({"observability": {"metrix": true}})"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioConfig::FromJsonText(
                   R"({"program": {"name": "srw", "nmae": "srw"}})"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioConfig::FromJsonText(
                   R"({"sampler": "mto", "mto": {"lzay": true}})"),
               std::invalid_argument);
}

TEST(ScenarioConfigTest, ProgramBlockSelectsTheWalkProgram) {
  // The "program" object resolves through the WalkProgram registry and
  // carries per-program parameters; the legacy enum follows when a legacy
  // name is chosen.
  {
    const ScenarioConfig config = ScenarioConfig::FromJsonText(
        R"({"program": {"name": "node2vec", "p": 0.5, "q": 2.0}})");
    EXPECT_EQ(config.ProgramName(), "node2vec");
    EXPECT_DOUBLE_EQ(config.program.p, 0.5);
    EXPECT_DOUBLE_EQ(config.program.q, 2.0);
  }
  {
    const ScenarioConfig config = ScenarioConfig::FromJsonText(
        R"({"program": {"name": "pagerank", "restart": 0.3}})");
    EXPECT_EQ(config.ProgramName(), "pagerank");
    EXPECT_DOUBLE_EQ(config.program.restart, 0.3);
  }
  {
    const ScenarioConfig config =
        ScenarioConfig::FromJsonText(R"({"program": {"name": "mhrw"}})");
    EXPECT_EQ(config.ProgramName(), "mhrw");
    EXPECT_EQ(config.sampler, SamplerKind::kMhrw);
  }
  // The "rj" alias canonicalizes, so fingerprints never depend on spelling.
  EXPECT_EQ(ScenarioConfig::FromJsonText(R"({"program": {"name": "rj"}})")
                .ProgramName(),
            "random_jump");
  // A program name must name a registered program; a knob must belong to
  // the chosen program; name is required; and the legacy "sampler" key is
  // an exclusive alias.
  EXPECT_THROW(
      ScenarioConfig::FromJsonText(R"({"program": {"name": "deepwalk"}})"),
      std::invalid_argument);
  EXPECT_THROW(ScenarioConfig::FromJsonText(
                   R"({"program": {"name": "srw", "p": 0.5}})"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioConfig::FromJsonText(
                   R"({"program": {"name": "node2vec", "restart": 0.1}})"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioConfig::FromJsonText(R"({"program": {"p": 0.5}})"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioConfig::FromJsonText(
                   R"({"sampler": "srw", "program": {"name": "srw"}})"),
               std::invalid_argument);
  // Out-of-range program parameters fail validation.
  EXPECT_THROW(ScenarioConfig::FromJsonText(
                   R"({"program": {"name": "node2vec", "p": 0.0}})"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioConfig::FromJsonText(
                   R"({"program": {"name": "pagerank", "restart": 1.5}})"),
               std::invalid_argument);
}

TEST(ScenarioConfigTest, SemanticValidation) {
  EXPECT_THROW(ScenarioConfig::FromJsonText(R"({"walkers": 0})"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioConfig::FromJsonText(R"({"sampler": "bogus"})"),
               std::invalid_argument);
  // Checkpointing requires a path...
  EXPECT_THROW(ScenarioConfig::FromJsonText(
                   R"({"checkpoint": {"every_units": 2}})"),
               std::invalid_argument);
  // MTO checkpoints its overlay delta since checkpoint format v2: a
  // checkpointed MTO scenario is a valid configuration.
  {
    const ScenarioConfig config = ScenarioConfig::FromJsonText(
        R"({"sampler": "mto", "checkpoint": {"path": "x.ckpt"}})");
    EXPECT_EQ(config.sampler, SamplerKind::kMto);
    EXPECT_EQ(config.checkpoint.path, "x.ckpt");
  }
  EXPECT_EQ(ScenarioConfig::FromJsonText(R"({"sampler": "mto"})").sampler,
            SamplerKind::kMto);
}

TEST(ScenarioConfigTest, FingerprintTracksBehavioralFieldsOnly) {
  const ScenarioConfig a = ScenarioConfig::FromJsonText(kFullDocument);
  ScenarioConfig b = a;
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  b.seed = 43;
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  b = a;
  b.backends[0].error_rate = 0.2;
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  // Thread count and stepping mode do not change results (runtime
  // contract), so checkpoints port across them.
  b = a;
  b.num_threads = 1;
  b.coalesce_frontier = false;
  b.queue_capacity = 16;
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  // Same for the whole execution-shape family: fetch mode, fetch worker
  // count, and pipeline depth (pipeline_equivalence_test pins the bitwise
  // equivalence these exclusions rely on)...
  b = a;
  b.fetch_mode = FetchMode::kAsync;
  b.fetch_threads = 7;
  b.pipeline_depth = 2;
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  // ...and for the routing strategy, excluded on live-rotation grounds: a
  // checkpoint resumed under a different policy continues as a hybrid
  // trajectory instead of failing the fingerprint check.
  b = a;
  b.strategy = BackendSelection::kRendezvous;
  EXPECT_EQ(a.Fingerprint(), b.Fingerprint());
  // Program parameters are behavioral: a node2vec crawl with different
  // bias, or a pagerank crawl with a different restart, is a different
  // experiment. (The program *name* is mixed as the registry string, so
  // "sampler": "mhrw" and "program": {"name": "mhrw"} fingerprint alike —
  // asserted via `a`, which uses the legacy key.)
  ScenarioConfig via_program = a;
  via_program.program.name = "mhrw";
  EXPECT_EQ(a.Fingerprint(), via_program.Fingerprint());
  b = a;
  b.program.name = "node2vec";
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  const uint64_t node2vec_reference = b.Fingerprint();
  b.program.p = 0.5;
  EXPECT_NE(b.Fingerprint(), node2vec_reference);
  b.program.p = 1.0;
  b.program.q = 2.0;
  EXPECT_NE(b.Fingerprint(), node2vec_reference);
  b = a;
  b.program.name = "pagerank";
  const uint64_t pagerank_reference = b.Fingerprint();
  b.program.restart = 0.3;
  EXPECT_NE(b.Fingerprint(), pagerank_reference);
}

TEST(ScenarioConfigTest, RoutingIsAnAliasOfStrategy) {
  EXPECT_EQ(ScenarioConfig::FromJsonText(R"({"routing": "rendezvous"})")
                .strategy,
            BackendSelection::kRendezvous);
  EXPECT_EQ(ScenarioConfig::FromJsonText(R"({"strategy": "rendezvous"})")
                .strategy,
            BackendSelection::kRendezvous);
  // Naming both is a contradiction, even when the values agree.
  EXPECT_THROW(ScenarioConfig::FromJsonText(
                   R"({"strategy": "sharded", "routing": "sharded"})"),
               std::invalid_argument);
}

TEST(ScenarioConfigTest, ParsesPipelineDepth) {
  EXPECT_EQ(ScenarioConfig::FromJsonText("{}").pipeline_depth, 0u);
  EXPECT_EQ(
      ScenarioConfig::FromJsonText(R"({"pipeline_depth": 3})").pipeline_depth,
      3u);
}

TEST(ScenarioConfigTest, FromFileRoundTrips) {
  const std::string path =
      testing::TempDir() + "/scenario_config_test.json";
  {
    std::ofstream out(path);
    out << kFullDocument;
  }
  const ScenarioConfig config = ScenarioConfig::FromFile(path);
  EXPECT_EQ(config.backends.size(), 2u);
  std::remove(path.c_str());
  EXPECT_THROW(ScenarioConfig::FromFile(path), std::runtime_error);
}

}  // namespace
}  // namespace mto
