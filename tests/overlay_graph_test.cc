#include "src/core/overlay_graph.h"

#include <gtest/gtest.h>

#include "src/graph/generators.h"
#include "src/graph/graph_stats.h"

namespace mto {
namespace {

/// Registers every node of `g` into `overlay`.
void RegisterAll(OverlayGraph& overlay, const Graph& g) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    overlay.RegisterNode(v, g.Neighbors(v));
  }
}

TEST(OverlayGraphTest, RegistrationMirrorsOriginal) {
  Graph g = Barbell(4);
  OverlayGraph overlay;
  RegisterAll(overlay, g);
  EXPECT_EQ(overlay.num_registered(), g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(overlay.Degree(v), g.Degree(v));
  }
  EXPECT_TRUE(overlay.HasEdge(3, 4));
}

TEST(OverlayGraphTest, UnregisteredAccessThrows) {
  OverlayGraph overlay;
  EXPECT_THROW(overlay.Neighbors(0), std::logic_error);
  EXPECT_FALSE(overlay.IsRegistered(0));
}

TEST(OverlayGraphTest, RegistrationIdempotent) {
  Graph g = Cycle(5);
  OverlayGraph overlay;
  overlay.RegisterNode(0, g.Neighbors(0));
  overlay.RemoveEdge(0, 1);
  overlay.RegisterNode(0, g.Neighbors(0));  // must not resurrect the edge
  EXPECT_FALSE(overlay.HasEdge(0, 1));
}

TEST(OverlayGraphTest, RemoveEdgeSymmetric) {
  Graph g = Complete(4);
  OverlayGraph overlay;
  RegisterAll(overlay, g);
  overlay.RemoveEdge(1, 2);
  EXPECT_FALSE(overlay.HasEdge(1, 2));
  EXPECT_FALSE(overlay.HasEdge(2, 1));
  EXPECT_EQ(overlay.Degree(1), 2u);
  EXPECT_EQ(overlay.Degree(2), 2u);
  EXPECT_EQ(overlay.num_removed(), 1u);
}

TEST(OverlayGraphTest, RemovalAppliesToLaterRegistration) {
  Graph g = Complete(4);
  OverlayGraph overlay;
  overlay.RegisterNode(0, g.Neighbors(0));
  overlay.RemoveEdge(0, 3);  // node 3 not yet registered
  overlay.RegisterNode(3, g.Neighbors(3));
  EXPECT_FALSE(overlay.HasEdge(3, 0));
  EXPECT_EQ(overlay.Degree(3), 2u);
}

TEST(OverlayGraphTest, AddEdgeSymmetricAndSorted) {
  Graph g(4, {{0, 1}, {2, 3}});
  OverlayGraph overlay;
  RegisterAll(overlay, g);
  overlay.AddEdge(0, 3);
  EXPECT_TRUE(overlay.HasEdge(0, 3));
  EXPECT_TRUE(overlay.HasEdge(3, 0));
  const auto& nbrs = overlay.Neighbors(3);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(overlay.num_added(), 1u);
}

TEST(OverlayGraphTest, AddAppliesToLaterRegistration) {
  Graph g(4, {{0, 1}, {2, 3}});
  OverlayGraph overlay;
  overlay.RegisterNode(0, g.Neighbors(0));
  overlay.AddEdge(0, 2);
  overlay.RegisterNode(2, g.Neighbors(2));
  EXPECT_TRUE(overlay.HasEdge(2, 0));
  EXPECT_EQ(overlay.Degree(2), 2u);
}

TEST(OverlayGraphTest, AddThenRemoveCancels) {
  Graph g(3, {{0, 1}});
  OverlayGraph overlay;
  RegisterAll(overlay, g);
  overlay.AddEdge(0, 2);
  overlay.RemoveEdge(0, 2);
  EXPECT_FALSE(overlay.HasEdge(0, 2));
  EXPECT_EQ(overlay.num_added(), 0u);
  EXPECT_EQ(overlay.num_removed(), 0u);  // cancelled, not recorded twice
}

TEST(OverlayGraphTest, RemoveThenAddCancels) {
  Graph g(3, {{0, 1}});
  OverlayGraph overlay;
  RegisterAll(overlay, g);
  overlay.RemoveEdge(0, 1);
  overlay.AddEdge(0, 1);
  EXPECT_TRUE(overlay.HasEdge(0, 1));
  EXPECT_EQ(overlay.num_removed(), 0u);
}

TEST(OverlayGraphTest, CommonNeighborCountTracksOverlay) {
  Graph g = Complete(5);
  OverlayGraph overlay;
  RegisterAll(overlay, g);
  EXPECT_EQ(overlay.CommonNeighborCount(0, 1), 3u);
  overlay.RemoveEdge(0, 2);  // 2 no longer common to 0 and 1
  EXPECT_EQ(overlay.CommonNeighborCount(0, 1), 2u);
}

TEST(OverlayGraphTest, ProcessedMemoization) {
  OverlayGraph overlay;
  EXPECT_FALSE(overlay.IsProcessed(1, 2));
  overlay.MarkProcessed(2, 1);  // normalized key: order-independent
  EXPECT_TRUE(overlay.IsProcessed(1, 2));
  EXPECT_TRUE(overlay.IsProcessed(2, 1));
}

TEST(OverlayGraphTest, DegreeDeltas) {
  Graph g = Complete(4);
  OverlayGraph overlay;
  RegisterAll(overlay, g);
  overlay.RemoveEdge(0, 1);
  overlay.RemoveEdge(0, 2);
  overlay.AddEdge(1, 2);  // already exists in g... use non-edge instead
  auto deltas = overlay.DegreeDeltas();
  EXPECT_EQ(deltas[0], -2);
  // Node 1: lost (0,1), gained duplicate-add is a no-op only in adjacency;
  // the recorded delta counts it, so compare against overlay degrees.
  for (NodeId v = 0; v < 4; ++v) {
    int expected = static_cast<int>(overlay.Degree(v)) -
                   static_cast<int>(g.Degree(v));
    int got = deltas.count(v) ? deltas[v] : 0;
    EXPECT_EQ(got, expected) << "node " << v;
  }
}

TEST(OverlayGraphTest, InducedOverlayMaterialization) {
  Graph g = Barbell(3);
  OverlayGraph overlay;
  RegisterAll(overlay, g);
  overlay.RemoveEdge(0, 1);
  std::vector<NodeId> mapping;
  Graph induced = overlay.InducedOverlay(&mapping);
  EXPECT_EQ(induced.num_nodes(), g.num_nodes());
  EXPECT_EQ(induced.num_edges(), g.num_edges() - 1);
  ASSERT_EQ(mapping.size(), g.num_nodes());
  EXPECT_FALSE(induced.HasEdge(0, 1));
}

TEST(OverlayGraphTest, InducedOverlayPartialRegistration) {
  Graph g = Complete(5);
  OverlayGraph overlay;
  overlay.RegisterNode(0, g.Neighbors(0));
  overlay.RegisterNode(1, g.Neighbors(1));
  std::vector<NodeId> mapping;
  Graph induced = overlay.InducedOverlay(&mapping);
  // Only nodes 0 and 1 registered; induced graph has their mutual edge.
  EXPECT_EQ(induced.num_nodes(), 2u);
  EXPECT_EQ(induced.num_edges(), 1u);
}

}  // namespace
}  // namespace mto
