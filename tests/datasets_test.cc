#include "src/graph/datasets.h"

#include <gtest/gtest.h>

#include "src/graph/graph_stats.h"

namespace mto {
namespace {

TEST(DatasetsTest, RegistryListsPaperDatasets) {
  auto infos = ListDatasets();
  ASSERT_GE(infos.size(), 4u);
  EXPECT_EQ(infos[0].name, "epinions");
  EXPECT_EQ(infos[0].paper_nodes, 26588u);
  EXPECT_EQ(infos[0].paper_edges, 100120u);
  EXPECT_NEAR(infos[0].paper_diameter90, 4.8, 1e-9);
}

TEST(DatasetsTest, UnknownNameThrows) {
  EXPECT_THROW(MakeDataset("no-such-dataset"), std::invalid_argument);
  EXPECT_THROW(GetDatasetInfo("no-such-dataset"), std::invalid_argument);
}

TEST(DatasetsTest, SmallVariantsAreConnectedAndClustered) {
  for (const char* name :
       {"epinions_small", "slashdot_b_small", "gplus_small"}) {
    Graph g = MakeDataset(name);
    EXPECT_TRUE(IsConnected(g)) << name;
    EXPECT_GT(g.num_nodes(), 1000u) << name;
    EXPECT_GT(AverageClustering(g), 0.05) << name;
  }
}

TEST(DatasetsTest, SmallVariantDeterministic) {
  Graph a = MakeDataset("epinions_small");
  Graph b = MakeDataset("epinions_small");
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.Edges(), b.Edges());
}

TEST(DatasetsTest, EpinionsScaleApproximatesTableOne) {
  Graph g = MakeDataset("epinions");
  const DatasetInfo info = GetDatasetInfo("epinions");
  // Node count within 10% (component extraction trims a little), edge count
  // within a factor of 2 — the stand-in matches scale, not exact values.
  EXPECT_GT(g.num_nodes(), info.paper_nodes * 9 / 10);
  EXPECT_LT(g.num_nodes(), info.paper_nodes * 11 / 10);
  EXPECT_GT(g.num_edges(), info.paper_edges / 2);
  EXPECT_LT(g.num_edges(), info.paper_edges * 2);
  EXPECT_TRUE(IsConnected(g));
}

}  // namespace
}  // namespace mto
