// Parallel survey: the Section VI extension in action. Four MTO walkers
// share one API session (merged cache, shared budget); convergence is
// certified across chains with the Gelman–Rubin diagnostic instead of a
// single long burn-in, and the network size — which this example pretends
// the provider does NOT publish — is recovered from sample collisions
// (Katzir et al., the paper's [12]). With |V|^ in hand, AVG estimates turn
// into COUNT estimates.
//
// Build & run:   ./build/examples/parallel_survey

#include <iostream>
#include <memory>

#include "src/core/mto_sampler.h"
#include "src/estimate/estimators.h"
#include "src/estimate/size_estimator.h"
#include "src/graph/datasets.h"
#include "src/mcmc/diagnostics.h"
#include "src/net/restricted_interface.h"
#include "src/walk/parallel_walkers.h"
#include "src/util/table.h"

int main() {
  using namespace mto;
  SocialNetwork network = SocialNetwork::WithSyntheticProfiles(
      MakeDataset("epinions_small"), /*seed=*/5);
  RestrictedInterface api(network);
  Rng rng(17);

  const size_t kWalkers = 4;
  std::vector<std::unique_ptr<Sampler>> walkers;
  for (size_t i = 0; i < kWalkers; ++i) {
    walkers.push_back(std::make_unique<MtoSampler>(
        api, rng, static_cast<NodeId>(rng.UniformInt(network.num_users()))));
  }
  ParallelWalkers pool(std::move(walkers));

  // Burn in until the chains agree (R-hat <= 1.1) instead of trusting any
  // single chain's Geweke statistic.
  MultiChainMonitor monitor(kWalkers, 1.1, 100, 25);
  size_t rounds = 0;
  while (!monitor.Converged() && rounds < 5000) {
    for (size_t c = 0; c < pool.size(); ++c) {
      pool.StepOne(c);
      monitor.Add(c, pool.walker(c).CurrentDegreeForDiagnostic());
    }
    ++rounds;
  }
  std::cout << "burn-in: " << rounds << " rounds x " << kWalkers
            << " walkers, R-hat " << monitor.last_rhat() << ", "
            << api.QueryCost() << " unique queries\n";

  // Freeze every overlay, then survey.
  for (size_t c = 0; c < pool.size(); ++c) {
    if (auto* mto = dynamic_cast<MtoSampler*>(&pool.walker(c))) {
      mto->FreezeTopology();
    }
  }
  RunningImportanceMean avg_age, active_fraction;
  SizeEstimator size;
  for (int i = 0; i < 700; ++i) {
    for (size_t c = 0; c < pool.size(); ++c) {
      Sampler& w = pool.walker(c);
      double weight = w.ImportanceWeight();
      avg_age.Add(w.CurrentProfile().age, weight);
      active_fraction.Add(w.CurrentProfile().num_posts >= 50 ? 1.0 : 0.0,
                          weight);
      if (w.CurrentDegree() > 0) size.Add(w.current(), w.CurrentDegree());
    }
    for (int t = 0; t < 6; ++t) pool.StepAll();
  }

  const double n_hat = size.Ready() ? size.Estimate() : 0.0;
  PrintBanner(std::cout, "Survey results");
  Table table({"quantity", "estimated", "true"});
  table.AddRow({"network size (collision estimator)", Table::Num(n_hat, 0),
                std::to_string(network.num_users())});
  table.AddRow({"average age", Table::Num(avg_age.Estimate(), 2),
                Table::Num(network.TrueAverageAge(), 2)});
  double true_active = 0;
  for (NodeId v = 0; v < network.num_users(); ++v) {
    if (network.profile(v).num_posts >= 50) ++true_active;
  }
  table.AddRow({"# users with 50+ posts (via |V|^)",
                Table::Num(SumFromMean(active_fraction.Estimate(),
                                       static_cast<size_t>(n_hat)), 0),
                Table::Num(true_active, 0)});
  table.PrintText(std::cout);
  std::cout << "\ntotal unique queries: " << api.QueryCost() << " of "
            << network.num_users() << " users\n";
  return 0;
}
