// Parallel survey: the Section VI extension in action, on the concurrent
// crawl runtime. Eight MTO walkers are sharded across four threads by a
// CrawlScheduler; they share one thread-safe API session
// (ConcurrentInterfaceCache: merged cache, shared budget, in-flight
// dedupe) against a simulated API with 150us per round trip, overlapping
// their round trips across threads. The walkers step speculatively
// (StepProtocol::kSpeculative): each round every walker announces the
// overlay pick its step will open with, the scheduler coalesces the
// deduplicated frontier into bulk requests, and each commit re-validates
// its speculation against the warm cache — see bench_runtime_throughput
// for the measured hit rate and uplift. Convergence is certified across
// chains with the Gelman–Rubin diagnostic instead of a single long
// burn-in, and the network size — which this example pretends the
// provider does NOT publish — is recovered from sample collisions
// (Katzir et al., the paper's [12]). With |V|^ in hand, AVG estimates
// turn into COUNT estimates.
//
// Build & run:   ./build/examples/parallel_survey

#include <chrono>
#include <iostream>
#include <memory>

#include "src/core/mto_sampler.h"
#include "src/estimate/estimators.h"
#include "src/estimate/size_estimator.h"
#include "src/graph/datasets.h"
#include "src/mcmc/diagnostics.h"
#include "src/net/restricted_interface.h"
#include "src/runtime/concurrent_interface_cache.h"
#include "src/runtime/crawl_scheduler.h"
#include "src/util/table.h"

int main() {
  using namespace mto;
  SocialNetwork network = SocialNetwork::WithSyntheticProfiles(
      MakeDataset("epinions_small"), /*seed=*/5);
  RestrictedInterface api(network);
  api.SetSimulatedLatency(std::chrono::microseconds(150));
  api.SetMaxBatchSize(32);
  ConcurrentInterfaceCache session(api);

  const size_t kWalkers = 8;
  CrawlConfig crawl;
  crawl.num_walkers = kWalkers;
  crawl.num_threads = 4;
  // MTO steps speculatively, so the frontier coalesces into bulk requests;
  // results are bit-identical to free-running (the runtime contract).
  crawl.coalesce_frontier = true;
  CrawlScheduler pool(session, crawl, /*seed=*/17,
                      [&](RestrictedInterface& iface, Rng& rng, size_t) {
                        return std::make_unique<MtoSampler>(
                            iface, rng,
                            static_cast<NodeId>(
                                rng.UniformInt(iface.num_users())));
                      });

  // Burn in until the chains agree (R-hat <= 1.1) instead of trusting any
  // single chain's Geweke statistic. The scheduler hands back one
  // diagnostic value per walker per round, in walker order.
  const auto t0 = std::chrono::steady_clock::now();
  MultiChainMonitor monitor(kWalkers, 1.1, 100, 25);
  std::vector<double> diagnostics;
  size_t rounds = 0;
  while (!monitor.Converged() && rounds < 5000) {
    diagnostics.clear();
    pool.RunRounds(25, &diagnostics);
    for (size_t r = 0; r < 25; ++r) {
      for (size_t c = 0; c < kWalkers; ++c) {
        monitor.Add(c, diagnostics[r * kWalkers + c]);
      }
    }
    rounds += 25;
  }
  std::cout << "burn-in: " << rounds << " rounds x " << kWalkers
            << " walkers on " << crawl.num_threads << " threads, R-hat "
            << monitor.last_rhat() << ", " << session.QueryCost()
            << " unique queries in " << session.BackendRequests()
            << " backend trips\n";

  // Freeze every overlay, then survey.
  for (size_t c = 0; c < pool.size(); ++c) {
    if (auto* mto = dynamic_cast<MtoSampler*>(&pool.walker(c))) {
      mto->FreezeTopology();
    }
  }
  RunningImportanceMean avg_age, active_fraction;
  SizeEstimator size;
  for (int i = 0; i < 350; ++i) {
    for (size_t c = 0; c < pool.size(); ++c) {
      Sampler& w = pool.walker(c);
      double weight = w.ImportanceWeight();
      avg_age.Add(w.CurrentProfile().age, weight);
      active_fraction.Add(w.CurrentProfile().num_posts >= 50 ? 1.0 : 0.0,
                          weight);
      if (w.CurrentDegree() > 0) size.Add(w.current(), w.CurrentDegree());
    }
    pool.RunRounds(6);
  }
  const auto t1 = std::chrono::steady_clock::now();

  const double n_hat = size.Ready() ? size.Estimate() : 0.0;
  PrintBanner(std::cout, "Survey results");
  Table table({"quantity", "estimated", "true"});
  table.AddRow({"network size (collision estimator)", Table::Num(n_hat, 0),
                std::to_string(network.num_users())});
  table.AddRow({"average age", Table::Num(avg_age.Estimate(), 2),
                Table::Num(network.TrueAverageAge(), 2)});
  double true_active = 0;
  for (NodeId v = 0; v < network.num_users(); ++v) {
    if (network.profile(v).num_posts >= 50) ++true_active;
  }
  table.AddRow({"# users with 50+ posts (via |V|^)",
                Table::Num(SumFromMean(active_fraction.Estimate(),
                                       static_cast<size_t>(n_hat)), 0),
                Table::Num(true_active, 0)});
  table.PrintText(std::cout);
  std::cout << "\ntotal unique queries: " << session.QueryCost() << " of "
            << network.num_users() << " users ("
            << session.BackendRequests() << " backend trips, "
            << pool.total_steps() << " walker steps, "
            << std::chrono::duration<double>(t1 - t0).count()
            << " s crawl)\n";
  return 0;
}
