// Fault-tolerant crawl with checkpoint/resume (src/service).
//
// A scenario JSON wires up three flaky API keys — one slow-but-reliable,
// one fast-but-faulty, one rate-limited — behind sharded selection and
// bounded-backoff retries. The crawl runs with periodic checkpoints, is
// "killed" mid-flight, resumed from disk in a fresh process image, and the
// resumed run's estimate, samples, and per-backend ledgers are verified
// bit-identical to an uninterrupted run of the same scenario.
//
// An alternative scenario file can be passed as an argument (every key is
// documented in docs/scenario_schema.md):
//
//   ./build/examples/resilient_crawl examples/scenarios/mto_crawl.json
//
// ctest runs it both ways: with the embedded SRW scenario, and with the
// MTO scenario above — whose mutable overlay rides along in the
// checkpoint since format v2.
//
// --unit-delay-ms=N stretches every Advance unit by N ms of wall clock
// (results are bit-identical — the delay is outside the crawl) so the live
// introspection endpoints of an observability.http_port scenario can be
// scraped mid-run; CI does exactly that against
// examples/scenarios/observed_crawl.json.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "src/service/crawl_service.h"
#include "src/util/table.h"

int main(int argc, char** argv) {
  using namespace mto;

  const std::string scenario_json = R"({
    "dataset": "epinions_small",
    "seed": 7,
    "sampler": "srw",
    "attribute": "degree",
    "walkers": 16,
    "threads": 4,
    "geweke": {"threshold": 0.1, "min_length": 100, "check_every": 25},
    "max_burn_in_rounds": 600,
    "num_samples": 96,
    "thinning": 10,
    "strategy": "sharded",
    "fault_seed": 1337,
    "retry": {"max_attempts_per_backend": 8, "base_backoff_us": 1000,
              "multiplier": 2.0, "max_backoff_us": 64000, "jitter": 0.5},
    "backends": [
      {"name": "slow-reliable", "latency_us": 900, "latency_sigma": 0.2},
      {"name": "fast-flaky", "latency_us": 150, "latency_sigma": 0.4,
       "error_rate": 0.15, "timeout_rate": 0.05, "timeout_us": 30000},
      {"name": "rate-limited", "latency_us": 200, "rate_per_sec": 2000,
       "burst": 32, "quota_rate": 0.05}
    ]
  })";

  std::string scenario_path;
  size_t unit_delay_ms = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--unit-delay-ms=", 16) == 0) {
      unit_delay_ms = static_cast<size_t>(std::atoll(argv[i] + 16));
    } else {
      scenario_path = argv[i];
    }
  }
  ScenarioConfig config = !scenario_path.empty()
                              ? ScenarioConfig::FromFile(scenario_path)
                              : ScenarioConfig::FromJsonText(scenario_json);
  const std::string checkpoint_path =
      config.checkpoint.path.empty() ? "/tmp/resilient_crawl.ckpt"
                                     : config.checkpoint.path;

  // Run() with an optional per-unit wall-clock stretch; the delay sits
  // between units, outside the crawl, so results stay bit-identical.
  const auto run = [&](CrawlService& service) {
    if (unit_delay_ms == 0) return service.Run();
    size_t units = 0;
    while (service.Advance()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(unit_delay_ms));
      ++units;
      if (config.checkpoint.every_units > 0 &&
          units % config.checkpoint.every_units == 0 && !service.Done()) {
        service.SaveCheckpoint(checkpoint_path);
      }
    }
    return service.Finish();
  };

  std::cout << "=== Uninterrupted reference run ===\n";
  CrawlService reference_service(config);
  if (const auto port = reference_service.http_port()) {
    std::cout << "live introspection: curl http://127.0.0.1:" << *port
              << "/metrics (also /report, /healthz)\n";
  }
  ServiceResult reference = run(reference_service);
  std::cout << "estimate " << reference.final_estimate << " (truth "
            << reference_service.network().TrueAverageDegree()
            << "), cost " << reference.total_query_cost << " unique queries, "
            << reference.backend_requests << " requests\n\n";

  std::cout << "=== Crash after 5 units, checkpoint on disk ===\n";
  {
    CrawlService victim(config);
    for (int unit = 0; unit < 5 && victim.Advance(); ++unit) {
    }
    victim.SaveCheckpoint(checkpoint_path);
    std::cout << "killed at phase "
              << (victim.phase() == CrawlPhase::kBurnIn ? "burn-in"
                                                        : "sampling")
              << ", round " << victim.rounds() << "\n";
    // The service object dies here: everything in memory is lost.
  }

  std::cout << "\n=== Resume from " << checkpoint_path << " ===\n";
  CrawlService resumed(config);
  resumed.LoadCheckpoint(checkpoint_path);
  while (resumed.Advance()) {
  }
  ServiceResult result = resumed.Finish();
  std::cout << "estimate " << result.final_estimate << ", cost "
            << result.total_query_cost << " unique queries\n\n";

  Table table({"backend", "unique", "requests", "failed", "timeouts",
               "errors", "quota", "paced", "sim ms"});
  for (size_t b = 0; b < result.backend_stats.size(); ++b) {
    const BackendStats& s = result.backend_stats[b];
    table.AddRow({resumed.pool().backend_config(b).name,
                  std::to_string(s.unique_queries),
                  std::to_string(s.requests),
                  std::to_string(s.failed_requests),
                  std::to_string(s.timeouts),
                  std::to_string(s.transient_errors),
                  std::to_string(s.quota_rejections),
                  std::to_string(s.pacing_waits),
                  Table::Num(static_cast<double>(s.simulated_us) / 1000.0,
                             1)});
  }
  table.PrintText(std::cout);

  const bool identical =
      result.samples == reference.samples &&
      result.final_estimate == reference.final_estimate &&
      result.total_query_cost == reference.total_query_cost;
  std::cout << "\nresume vs uninterrupted: "
            << (identical ? "bit-identical (samples, estimate, cost)"
                          : "MISMATCH")
            << "\n";
  std::remove(checkpoint_path.c_str());
  return identical ? 0 : 1;
}
