// Quickstart: estimate the average degree of a social network you can only
// reach through a per-user query interface. Both samplers get the same
// metered budget of unique queries (the quantity real OSNs limit); the
// rewired walk squeezes a better estimate out of it.
//
// Build & run:   ./build/examples/quickstart

#include <cmath>
#include <iostream>
#include <memory>

#include "src/core/mto_sampler.h"
#include "src/estimate/estimators.h"
#include "src/graph/datasets.h"
#include "src/mcmc/geweke.h"
#include "src/net/restricted_interface.h"
#include "src/walk/srw.h"

int main() {
  using namespace mto;

  // 1. A social network. Here a synthetic Slashdot-scale stand-in; swap in
  //    ReadEdgeListFile(...) to load your own snapshot.
  SocialNetwork network(MakeDataset("slashdot_b_small"));
  const double truth = network.TrueAverageDegree();
  std::cout << "network: " << network.num_users() << " users, "
            << network.graph().num_edges() << " friendships\n";
  std::cout << "ground truth average degree: " << truth << "\n";
  const uint64_t kBudget = 900;
  std::cout << "query budget: " << kBudget << " unique users\n\n";

  // 2. The only thing a third party sees: the restrictive web interface.
  auto estimate_with = [&](auto make_sampler, const char* label) {
    RestrictedInterface api(network);
    api.SetBudget(kBudget);
    Rng rng(2024);
    auto sampler = make_sampler(api, rng);

    // Burn in until the Geweke diagnostic says the walk has mixed (or the
    // budget forces our hand).
    GewekeMonitor monitor(/*threshold=*/0.1);
    uint64_t last_cost = 0;
    int stalled = 0;
    while (!monitor.Converged() && stalled < 32) {
      sampler->Step();
      monitor.Add(sampler->CurrentDegreeForDiagnostic());
      stalled = api.QueryCost() == last_cost ? stalled + 1 : 0;
      last_cost = api.QueryCost();
    }
    // Once burned in, stop rewiring: the walk becomes a clean SRW on the
    // overlay and the importance weights are exactly consistent.
    if (auto* mto = dynamic_cast<MtoSampler*>(sampler.get())) {
      mto->FreezeTopology();
    }

    // Spend the rest of the budget on weighted samples (weights target the
    // uniform distribution over users).
    RunningImportanceMean estimate;
    stalled = 0;
    while (stalled < 64) {
      estimate.Add(sampler->CurrentDegree(), sampler->ImportanceWeight());
      for (int t = 0; t < 4; ++t) sampler->Step();
      stalled = api.QueryCost() == last_cost ? stalled + 1 : 0;
      last_cost = api.QueryCost();
    }
    double est = estimate.Estimate();
    std::cout << label << ": estimate " << est << "  (error "
              << 100.0 * std::abs(est - truth) / truth << "%, "
              << estimate.count() << " samples, " << api.QueryCost()
              << " queries)\n";
  };

  estimate_with(
      [](RestrictedInterface& api, Rng& rng) {
        return std::make_unique<SimpleRandomWalk>(api, rng, 0);
      },
      "SRW");
  estimate_with(
      [](RestrictedInterface& api, Rng& rng) {
        return std::make_unique<MtoSampler>(api, rng, 0);
      },
      "MTO");
  return 0;
}
