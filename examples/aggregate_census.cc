// Aggregate census: a market-research scenario from the paper's intro —
// estimate several big-picture aggregates (average degree, average age,
// average posting activity, and the COUNT of highly-active users) over an
// online social network, comparing all four samplers at a fixed query
// budget. Demonstrates AVG with selection conditions and COUNT/SUM recovery
// via the public population size (paper footnote 4).
//
// Build & run:   ./build/examples/aggregate_census

#include <iostream>

#include "src/estimate/estimators.h"
#include "src/experiments/harness.h"
#include "src/graph/datasets.h"
#include "src/util/table.h"

int main() {
  using namespace mto;
  SocialNetwork network = SocialNetwork::WithSyntheticProfiles(
      MakeDataset("epinions_small"), /*seed=*/42);

  // Ground truth for the report card.
  double true_posts = 0.0, true_active = 0.0;
  for (NodeId v = 0; v < network.num_users(); ++v) {
    true_posts += network.profile(v).num_posts;
    if (network.profile(v).num_posts >= 50) true_active += 1.0;
  }
  true_posts /= network.num_users();

  PrintBanner(std::cout, "Aggregate census over " +
                             std::to_string(network.num_users()) + " users");
  Table table({"sampler", "avg degree", "avg age", "avg posts",
               "# users with 50+ posts", "unique queries"});

  for (auto kind : {SamplerKind::kSrw, SamplerKind::kMhrw,
                    SamplerKind::kRandomJump, SamplerKind::kMto}) {
    RestrictedInterface api(network);
    Rng rng(7);
    auto sampler = MakeSampler(kind, api, rng, 0, MtoConfig{});
    // Fixed-budget session: walk until ~2500 unique queries are spent.
    api.SetBudget(2500);
    for (int i = 0; i < 800; ++i) sampler->Step();  // burn-in
    RunningImportanceMean degree, age, posts, active;
    for (int i = 0; i < 2000; ++i) {
      double w = sampler->ImportanceWeight();
      UserProfile profile = sampler->CurrentProfile();
      degree.Add(sampler->CurrentDegree(), w);
      age.Add(profile.age, w);
      posts.Add(profile.num_posts, w);
      active.Add(profile.num_posts >= 50 ? 1.0 : 0.0, w);
      for (int t = 0; t < 3; ++t) sampler->Step();
    }
    // COUNT = population * AVG of the 0/1 selection indicator.
    double active_count =
        SumFromMean(active.Estimate(), network.num_users());
    table.AddRow({SamplerName(kind), Table::Num(degree.Estimate(), 2),
                  Table::Num(age.Estimate(), 2),
                  Table::Num(posts.Estimate(), 1),
                  Table::Num(active_count, 0),
                  std::to_string(api.QueryCost())});
  }
  table.AddRow({"(truth)", Table::Num(network.TrueAverageDegree(), 2),
                Table::Num(network.TrueAverageAge(), 2),
                Table::Num(true_posts, 1), Table::Num(true_active, 0), "-"});
  table.PrintText(std::cout);
  return 0;
}
