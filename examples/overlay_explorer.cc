// Overlay explorer: walks the paper's barbell running example with
// MTO-Sampler, then prints what the rewiring did — which edges were removed
// or replaced, the overlay topology, and the conductance / mixing-time
// improvements. A compact tour of the library's analysis tools.
//
// Build & run:   ./build/examples/overlay_explorer

#include <iostream>

#include "src/core/mto_sampler.h"
#include "src/graph/generators.h"
#include "src/graph/graph_stats.h"
#include "src/net/restricted_interface.h"
#include "src/spectral/conductance.h"
#include "src/spectral/eigen.h"
#include "src/spectral/mixing.h"
#include "src/util/table.h"

int main() {
  using namespace mto;
  Graph barbell = Barbell(11);
  SocialNetwork network(barbell);
  RestrictedInterface api(network);
  Rng rng(3);
  MtoSampler sampler(api, rng, 0);

  // Walk until every user has been seen (so the overlay covers the graph).
  int steps = 0;
  while (api.QueryCost() < network.num_users() && steps < 100000) {
    sampler.Step();
    ++steps;
  }
  std::cout << "walked " << steps << " steps, queried " << api.QueryCost()
            << "/" << network.num_users() << " users\n";
  std::cout << "edges removed: " << sampler.overlay().num_removed()
            << ", edges added by replacement: "
            << sampler.overlay().num_added() << "\n\n";

  std::vector<NodeId> mapping;
  Graph overlay = sampler.overlay().InducedOverlay(&mapping);

  PrintBanner(std::cout, "Topology before vs after rewiring");
  Table table({"metric", "original G", "overlay G*"});
  auto add = [&](const std::string& metric, double a, double b, int p) {
    table.AddRow({metric, Table::Num(a, p), Table::Num(b, p)});
  };
  add("edges", static_cast<double>(barbell.num_edges()),
      static_cast<double>(overlay.num_edges()), 0);
  add("conductance (paper metric)", ExactConductance(barbell),
      ExactConductance(overlay), 4);
  add("SLEM (lazy walk)", Slem(barbell, {.laziness = 0.5}),
      Slem(overlay, {.laziness = 0.5}), 5);
  add("mixing time 1/log(1/mu)",
      MixingTimeFromSlem(Slem(barbell, {.laziness = 0.5})),
      MixingTimeFromSlem(Slem(overlay, {.laziness = 0.5})), 1);
  add("mixing-bound coefficient",
      MixingTimeUpperBoundCoefficient(ExactConductance(barbell)),
      MixingTimeUpperBoundCoefficient(ExactConductance(overlay)), 1);
  table.PrintText(std::cout);

  // Which clique edges survived? Print the overlay's degree histogram.
  PrintBanner(std::cout, "Overlay degree histogram");
  auto hist = DegreeHistogram(overlay);
  for (size_t d = 0; d < hist.size(); ++d) {
    if (hist[d] == 0) continue;
    std::cout << "degree " << d << ": " << hist[d] << " nodes\n";
  }
  std::cout << "\nThe bridge (10,11) must survive: "
            << (overlay.HasEdge(10, 11) ? "yes" : "NO (bug!)") << "\n";
  return 0;
}
