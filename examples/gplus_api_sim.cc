// Google-Plus-style API session: the paper's online experiment shape.
// A third party with a hard daily request limit (e.g. 350/hour like
// Twitter, or the Google Social Graph API quota) wants the average
// self-description length of users. We simulate day-by-day crawling under a
// strict unique-query budget and watch the estimate settle, for SRW and MTO.
//
// Build & run:   ./build/examples/gplus_api_sim

#include <iostream>

#include "src/core/mto_sampler.h"
#include "src/estimate/estimators.h"
#include "src/experiments/harness.h"
#include "src/graph/datasets.h"
#include "src/util/table.h"

int main() {
  using namespace mto;
  SocialNetwork network = SocialNetwork::WithSyntheticProfiles(
      MakeDataset("gplus_small"), /*seed=*/99);
  const double truth = network.TrueAverageDescriptionLength();
  const uint64_t kDailyQuota = 600;  // Facebook's documented 600/600s limit
  const int kDays = 6;

  PrintBanner(std::cout, "Rate-limited API crawl: avg self-description length"
                         " (truth " + Table::Num(truth, 1) + ")");
  Table table({"day", "sampler", "unique queries", "estimate", "rel. error"});

  for (auto kind : {SamplerKind::kSrw, SamplerKind::kMto}) {
    RestrictedInterface api(network);
    Rng rng(13);
    auto sampler = MakeSampler(kind, api, rng, 0, MtoConfig{});
    RunningImportanceMean estimate;
    int samples_between = 0;
    for (int day = 1; day <= kDays; ++day) {
      api.SetBudget(kDailyQuota * day);  // quota refreshes daily
      // Walk until today's quota is gone (Step() freezes once exhausted,
      // detected by the cost no longer moving).
      uint64_t last_cost = api.QueryCost();
      int stalled = 0;
      while (stalled < 50) {
        sampler->Step();
        if (++samples_between >= 4) {
          estimate.Add(AttributeValue(*sampler, Attribute::kDescriptionLength),
                       sampler->ImportanceWeight());
          samples_between = 0;
        }
        stalled = api.QueryCost() == last_cost ? stalled + 1 : 0;
        last_cost = api.QueryCost();
      }
      double est = estimate.Valid() ? estimate.Estimate() : 0.0;
      table.AddRow({std::to_string(day), SamplerName(kind),
                    std::to_string(api.QueryCost()), Table::Num(est, 1),
                    Table::Num(RelativeError(est, truth), 3)});
    }
  }
  table.PrintText(std::cout);
  std::cout << "\nMTO should close in on the truth in fewer metered days.\n";
  return 0;
}
